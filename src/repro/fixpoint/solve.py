"""Predicate-abstraction fixpoint solver for Horn constraints with κ variables.

Algorithm (the "liquid inference" of §4.2, phase 3):

1. Initialise every κ to the conjunction of *all* its qualifier instances
   (the strongest candidate solution).
2. Repeatedly pick a constraint whose head is a κ application and whose body
   (with the current assignment substituted in) does not imply some qualifier
   in the head κ's set; *weaken* the κ by dropping that qualifier.  Because
   sets only shrink and are finite, this terminates.
3. When no more weakening is needed, check every concrete-head constraint
   under the final assignment; failures are reported with their provenance
   tags — these are the type errors shown to the user.

Scheduling and SMT backend come in two strategies:

``"incremental"`` (the default)
    Clauses are processed off a κ-dependency *worklist*: a clause is
    re-examined only when a κ appearing in its hypotheses was weakened,
    instead of rescanning every clause whose κ-footprint intersects a dirty
    set.  Each clause owns a persistent :class:`repro.smt.IncrementalSolver`;
    one visit asserts the (solution-substituted) hypotheses once inside a
    ``push``/``pop`` scope and tests every candidate qualifier under a
    throwaway assumption literal, so N qualifier checks cost one CNF build
    instead of N.  Atom tables, learned clauses and theory lemmas survive
    across visits to the same clause.

``"naive"``
    The historical loop: dirty-set rescan, one from-scratch
    :func:`repro.smt.is_valid` query per qualifier check.  Kept as the
    differential-testing oracle; both strategies converge to the same
    (unique) greatest fixpoint, so solutions and reported errors must match
    exactly.

Exhausting ``max_iterations`` does not raise: the result carries one
budget-exhausted :class:`FixpointError` per clause still scheduled, so
callers keep their diagnostics (tags, partial solution, statistics).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from fractions import Fraction

from repro.logic.expr import (
    binop,
    unary,
    App,
    BinOp,
    BoolConst,
    CMP_OPS,
    Expr,
    Forall,
    IntConst,
    Ite,
    KVar,
    RealConst,
    TRUE,
    UnaryOp,
    Var,
    and_,
)
from repro.logic.simplify import simplify
from repro.logic.sorts import Sort
from repro.logic.subst import kvars_of, substitute
from repro.obs import current_obs, span as obs_span
from repro.smt import (
    IncrementalSolver,
    SatResult,
    SmtError,
    current_context,
    is_valid,
    validity_answer,
)
from repro.smt.quant import has_quantifier
from repro.fixpoint.constraint import (
    Constraint,
    ConstraintError,
    FlatConstraint,
    KVarDecl,
    flatten,
)
from repro.fixpoint.qualifiers import Qualifier, default_qualifiers, instantiate_qualifiers


Solution = Dict[str, Expr]
"""Maps κ names to predicates over the κ's formal parameters."""

DEFAULT_STRATEGY = "incremental"
"""Strategy used when :class:`FixpointSolver` is built without an explicit
one; tests and benchmarks flip this to ``"naive"`` to run the oracle loop."""

BUDGET_EXHAUSTED = "budget-exhausted"
INVALID = "invalid"
SOLVER_UNKNOWN = "solver-unknown"

# Fault-boundary kinds: the execution layer (scheduler/portfolio/daemon)
# uses these when a function's verdict was degraded by a crash, a missed
# deadline or a memory ceiling rather than decided by the solver.  Such
# errors carry no constraint.
WORKER_CRASHED = "worker-crashed"
DEADLINE_EXCEEDED = "deadline-exceeded"
RESOURCE_EXHAUSTED = "resource-exhausted"
FAULT_KINDS = (WORKER_CRASHED, DEADLINE_EXCEEDED, RESOURCE_EXHAUSTED)

_ONESHOT = object()
"""Per-clause sentinel: the clause left the incremental fragment (quantified
hypotheses or a preprocessing error) and is checked with one-shot queries."""

_WITNESS_CACHE_LIMIT = 16
"""Counterexample models retained per clause for query-free discarding."""


@dataclass
class FixpointError:
    """A constraint the solver could not discharge.

    ``kind`` is :data:`INVALID` for a constraint that remains invalid under
    the weakest viable assignment (a type error), or
    :data:`BUDGET_EXHAUSTED` for a constraint still scheduled for weakening
    when ``max_iterations`` ran out (an incomplete run, not a refutation).

    For :data:`INVALID` errors the solver additionally records the
    *counterexample context*: the κ-solution-substituted ``hypotheses`` and
    ``goal`` of the failed validity query, and — when the DPLL(T) stack
    could extract one — the satisfying assignment ``model`` of the
    refutation, a concrete valuation of the clause's binders under which
    every hypothesis holds and the goal is false.

    Errors with a kind from :data:`FAULT_KINDS` come from the execution
    layer, not the solver, and have ``constraint is None``: their ``tag``
    is the kind itself and their ``span`` is empty.
    """

    constraint: Optional[FlatConstraint] = None
    kind: str = INVALID
    detail: str = ""
    hypotheses: Tuple[Expr, ...] = ()
    goal: Optional[Expr] = None
    model: Optional[Dict[str, object]] = None

    @property
    def tag(self) -> str:
        if self.constraint is None:
            return self.kind
        return self.constraint.tag

    @property
    def span(self):
        if self.constraint is None:
            return None
        return self.constraint.span

    def __str__(self) -> str:
        if self.kind in FAULT_KINDS or self.constraint is None:
            suffix = f": {self.detail}" if self.detail else ""
            return f"{self.kind}{suffix}"
        if self.kind == BUDGET_EXHAUSTED:
            suffix = f" ({self.detail})" if self.detail else ""
            return (
                f"iteration budget exhausted before clause "
                f"{self.constraint.describe()} converged{suffix}"
            )
        if self.kind == SOLVER_UNKNOWN:
            suffix = f" ({self.detail})" if self.detail else ""
            return (
                f"solver returned unknown on clause "
                f"{self.constraint.describe()}{suffix}"
            )
        return f"invalid constraint {self.constraint.describe()}"


@dataclass
class _RunStats:
    """Counters threaded through one ``solve`` call."""

    iterations: int = 0
    queries: int = 0
    from_scratch: int = 0
    assumption_checks: int = 0
    contexts_built: int = 0
    clauses_retained: int = 0
    batched_checks: int = 0
    theory_propagations: int = 0
    partial_checks: int = 0
    core_shrink_rounds: int = 0
    shrink_budget_hits: int = 0
    explanations: int = 0
    explanation_literals: int = 0
    sat_restarts: int = 0
    sat_clauses_deleted: int = 0
    sat_learned: int = 0
    sat_lbd_total: int = 0
    sat_phase_saving_hits: int = 0
    sat_time: float = 0.0
    theory_time: float = 0.0
    # UNKNOWN solver answers observed during weakening, surfaced as
    # structured errors instead of being silently folded into "not valid"
    unknown_errors: List[FixpointError] = field(default_factory=list)

    def absorb_context(self, solver: IncrementalSolver) -> None:
        """Fold a retiring per-clause solver's lifetime counters in."""
        self.clauses_retained += solver.clauses_retained
        self.theory_propagations += solver.theory_propagations
        self.partial_checks += solver.partial_checks
        self.core_shrink_rounds += solver.core_shrink_rounds
        self.shrink_budget_hits += solver.shrink_budget_hits
        self.explanations += solver.explanations
        self.explanation_literals += solver.explanation_literals
        self.sat_restarts += solver.sat_restarts
        self.sat_clauses_deleted += solver.sat_clauses_deleted
        self.sat_learned += solver.sat_learned
        self.sat_lbd_total += solver.sat_lbd_total
        self.sat_phase_saving_hits += solver.sat_phase_saving_hits
        self.sat_time += solver.sat_time
        self.theory_time += solver.theory_time

    def record_unknown(self, clause: FlatConstraint, reason: str) -> None:
        for existing in self.unknown_errors:
            if existing.constraint is clause and existing.detail == reason:
                return
        self.unknown_errors.append(
            FixpointError(clause, kind=SOLVER_UNKNOWN, detail=reason)
        )


@dataclass
class FixpointResult:
    solution: Solution
    errors: List[FixpointError]
    iterations: int = 0
    smt_queries: int = 0
    elapsed: float = 0.0
    from_scratch_solves: int = 0
    assumption_checks: int = 0
    incremental_hits: int = 0
    clauses_retained: int = 0
    budget_exhausted: bool = False
    batched_checks: int = 0
    theory_propagations: int = 0
    partial_checks: int = 0
    core_shrink_rounds: int = 0
    shrink_budget_hits: int = 0
    explanations: int = 0
    explanation_literals: int = 0
    sat_restarts: int = 0
    sat_clauses_deleted: int = 0
    sat_learned: int = 0
    sat_lbd_total: int = 0
    sat_phase_saving_hits: int = 0
    sat_time: float = 0.0
    theory_time: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def avg_explanation_len(self) -> float:
        """Mean literal count of theory-conflict explanations this run."""
        if not self.explanations:
            return 0.0
        return self.explanation_literals / self.explanations

    @property
    def avg_lbd(self) -> float:
        """Mean literal-block-distance of clauses learned this run."""
        if not self.sat_learned:
            return 0.0
        return self.sat_lbd_total / self.sat_learned


#: ``FixpointResult`` counter fields mirrored into ``fixpoint.<field>``
#: registry counters after every solve.  All are deterministic functions of
#: the constraint set, so merged totals agree between serial and ``--jobs N``
#: runs (functions are solved independently either way).
_RESULT_COUNTER_FIELDS = (
    ("iterations", "clause visits across all weakening rounds"),
    ("smt_queries", "satisfiability queries issued by the fixpoint loop"),
    ("from_scratch_solves", "one-shot solver builds (non-incremental checks)"),
    ("assumption_checks", "qualifier checks on a persistent incremental solver"),
    ("incremental_hits", "assumption checks that reused an existing solver"),
    ("batched_checks", "refute-any batches covering several qualifiers at once"),
    ("clauses_retained", "learned clauses surviving pop() in per-clause solvers"),
    ("theory_propagations", "theory propagations inside per-clause solvers"),
    ("partial_checks", "partial feasibility checks inside per-clause solvers"),
    ("core_shrink_rounds", "core-shrink rounds inside per-clause solvers"),
    ("shrink_budget_hits", "core-shrink rounds truncated by the per-check budget"),
    ("explanations", "conflict explanations inside per-clause solvers"),
    ("explanation_literals", "explanation literals inside per-clause solvers"),
    ("sat_restarts", "Luby-scheduled CDCL restarts inside per-clause solvers"),
    ("sat_clauses_deleted", "learned clauses tombstoned by clause-DB reduction"),
    ("sat_learned", "clauses learned by conflict analysis"),
    ("sat_lbd_total", "summed literal-block-distance over learned clauses"),
    ("sat_phase_saving_hits", "decisions that reused a saved phase"),
)


def _emit_fixpoint_metrics(result: "FixpointResult", strategy: str) -> None:
    """Mirror one solve's counters into the ambient metrics registry."""
    registry = current_obs().registry
    registry.counter(
        f"fixpoint.solves.{strategy}", help="fixpoint runs by weakening strategy"
    ).inc()
    for field_name, help_text in _RESULT_COUNTER_FIELDS:
        value = getattr(result, field_name)
        if value:
            registry.counter(f"fixpoint.{field_name}", help=help_text).inc(value)
    if result.errors:
        registry.counter(
            "fixpoint.errors", help="constraints left undischarged (all kinds)"
        ).inc(len(result.errors))
    registry.counter(
        "fixpoint.solve_seconds",
        help="wall-clock time inside FixpointSolver.solve",
        unit="seconds",
    ).inc(result.elapsed)
    if result.sat_time:
        registry.counter(
            "fixpoint.sat_seconds",
            help="SAT-core time inside per-clause incremental solvers",
            unit="seconds",
        ).inc(result.sat_time)
    if result.theory_time:
        registry.counter(
            "fixpoint.theory_seconds",
            help="theory-solver time inside per-clause incremental solvers",
            unit="seconds",
        ).inc(result.theory_time)


def apply_solution(expr: Expr, solution: Solution, decls: Dict[str, KVarDecl]) -> Expr:
    """Substitute solved κ applications inside ``expr``.

    Subtrees without κ occurrences are returned as-is — with interned
    expressions the check is one cached-frozenset truthiness test, which
    spares the common case (concrete hypotheses) a full rebuild per fixpoint
    visit.
    """
    if not kvars_of(expr):
        return expr
    if isinstance(expr, KVar):
        decl = decls.get(expr.name)
        if decl is None:
            raise ConstraintError(f"unknown κ variable {expr.name}")
        body = solution.get(expr.name, TRUE)
        mapping = {
            formal: apply_solution(actual, solution, decls)
            for (formal, _), actual in zip(decl.params, expr.args)
        }
        return substitute(body, mapping)
    if isinstance(expr, BinOp):
        return binop(
            expr.op,
            apply_solution(expr.lhs, solution, decls),
            apply_solution(expr.rhs, solution, decls),
        )
    if isinstance(expr, UnaryOp):
        return unary(expr.op, apply_solution(expr.operand, solution, decls))
    if isinstance(expr, Ite):
        return Ite(
            apply_solution(expr.cond, solution, decls),
            apply_solution(expr.then, solution, decls),
            apply_solution(expr.otherwise, solution, decls),
        )
    if isinstance(expr, App):
        return App(
            expr.func,
            tuple(apply_solution(a, solution, decls) for a in expr.args),
            expr.sort,
        )
    if isinstance(expr, Forall):
        return Forall(expr.binders, apply_solution(expr.body, solution, decls))
    return expr


class _EvalError(Exception):
    """The expression falls outside the directly evaluable fragment."""


def _as_bool(value) -> bool:
    return value if isinstance(value, bool) else value != 0


def _as_num(value):
    if isinstance(value, bool):
        return 1 if value else 0
    return value


def _eval_expr(expr: Expr, model: Dict[str, object]):
    """Evaluate a goal under a solver model (missing variables default to 0).

    Only the fragment whose semantics provably coincide with the SMT
    solver's is handled: constants, variables, boolean connectives,
    comparisons, ``+ - *`` and if-then-else.  Division, modulo and
    applications are *uninterpreted* for the solver (opaque fresh
    variables), so evaluating them arithmetically could disagree with the
    model — they raise :class:`_EvalError` and the caller falls back to an
    exact per-qualifier check.
    """
    if isinstance(expr, BoolConst):
        return expr.value
    if isinstance(expr, IntConst):
        return expr.value
    if isinstance(expr, RealConst):
        return Fraction(expr.value)
    if isinstance(expr, Var):
        return model.get(expr.name, 0)
    if isinstance(expr, UnaryOp):
        if expr.op == "!":
            return not _as_bool(_eval_expr(expr.operand, model))
        if expr.op == "-":
            return -_as_num(_eval_expr(expr.operand, model))
        raise _EvalError(expr.op)
    if isinstance(expr, Ite):
        chosen = expr.then if _as_bool(_eval_expr(expr.cond, model)) else expr.otherwise
        return _eval_expr(chosen, model)
    if isinstance(expr, BinOp):
        op = expr.op
        if op == "&&":
            return _as_bool(_eval_expr(expr.lhs, model)) and _as_bool(
                _eval_expr(expr.rhs, model)
            )
        if op == "||":
            return _as_bool(_eval_expr(expr.lhs, model)) or _as_bool(
                _eval_expr(expr.rhs, model)
            )
        if op == "=>":
            return not _as_bool(_eval_expr(expr.lhs, model)) or _as_bool(
                _eval_expr(expr.rhs, model)
            )
        if op == "<=>":
            return _as_bool(_eval_expr(expr.lhs, model)) == _as_bool(
                _eval_expr(expr.rhs, model)
            )
        if op in CMP_OPS:
            lhs = _as_num(_eval_expr(expr.lhs, model))
            rhs = _as_num(_eval_expr(expr.rhs, model))
            if op == "<":
                return lhs < rhs
            if op == "<=":
                return lhs <= rhs
            if op == ">":
                return lhs > rhs
            if op == ">=":
                return lhs >= rhs
            if op == "=":
                return lhs == rhs
            return lhs != rhs
        if op == "+":
            return _as_num(_eval_expr(expr.lhs, model)) + _as_num(_eval_expr(expr.rhs, model))
        if op == "-":
            return _as_num(_eval_expr(expr.lhs, model)) - _as_num(_eval_expr(expr.rhs, model))
        if op == "*":
            return _as_num(_eval_expr(expr.lhs, model)) * _as_num(_eval_expr(expr.rhs, model))
        raise _EvalError(op)
    raise _EvalError(type(expr).__name__)


def _goal_refuted_by(goal: Expr, model: Dict[str, object]) -> bool:
    """Whether ``model`` definitively falsifies ``goal`` (False when unsure)."""
    try:
        return _eval_expr(goal, model) is False
    except _EvalError:
        return False


def _goal_eval_failure(goal: Expr, model: Dict[str, object]) -> Optional[str]:
    """The construct that puts ``goal`` outside the evaluable fragment, if any."""
    try:
        _eval_expr(goal, model)
    except _EvalError as error:
        return str(error)
    return None


@dataclass
class FixpointSolver:
    """Solver instance; create one per verification task.

    Declare every κ variable, then hand ``solve`` the constraint tree the
    checker produced.  A constraint with only concrete heads needs no
    declarations:

    >>> from repro.fixpoint.constraint import c_forall, c_pred
    >>> from repro.logic.expr import Var, ge
    >>> from repro.logic.sorts import INT
    >>> solver = FixpointSolver()
    >>> valid = c_forall("x", INT, ge(Var("x"), 1), c_pred(ge(Var("x"), 0)))
    >>> solver.solve(valid).ok
    True

    A failing obligation comes back as a :class:`FixpointError` carrying the
    clause's provenance tag and a concrete counterexample model:

    >>> broken = c_forall("x", INT, ge(Var("x"), 0), c_pred(ge(Var("x"), 1), tag="demo"))
    >>> result = FixpointSolver().solve(broken)
    >>> [error.tag for error in result.errors]
    ['demo']
    >>> int(result.errors[0].model["x"])
    0
    """

    kvar_decls: Dict[str, KVarDecl] = field(default_factory=dict)
    qualifiers: Sequence[Qualifier] = field(default_factory=default_qualifiers)
    max_iterations: int = 10000
    strategy: Optional[str] = None  # None -> module DEFAULT_STRATEGY
    # Theory-round budget handed to each per-clause incremental solver;
    # None keeps the IncrementalSolver default.  Tests use a tiny budget to
    # exercise the structured solver-unknown error path.
    max_theory_rounds: Optional[int] = None

    def declare(self, decl: KVarDecl) -> None:
        self.kvar_decls[decl.name] = decl

    # -- main entry point ------------------------------------------------------

    def solve(self, constraint: Constraint) -> FixpointResult:
        started = time.perf_counter()
        strategy = self.strategy or DEFAULT_STRATEGY
        if strategy not in ("incremental", "naive"):
            raise ConstraintError(f"unknown fixpoint strategy {strategy!r}")
        clauses = flatten(constraint)
        self._check_kvars_known(clauses)

        candidate: Dict[str, List[Expr]] = {
            name: instantiate_qualifiers(decl, self.qualifiers)
            for name, decl in self.kvar_decls.items()
        }

        kvar_clauses = [clause for clause in clauses if clause.head.is_kvar]
        concrete_clauses = [clause for clause in clauses if not clause.head.is_kvar]

        stats = _RunStats()
        if strategy == "naive":
            budget_errors = self._weaken_naive(kvar_clauses, candidate, stats)
        else:
            budget_errors = self._weaken_worklist(kvar_clauses, candidate, stats)

        solution: Solution = {
            name: simplify(and_(*predicates)) for name, predicates in candidate.items()
        }

        errors: List[FixpointError] = list(budget_errors)
        errors.extend(stats.unknown_errors)
        if not budget_errors:
            # Only check concrete heads at an actual fixpoint: under a
            # half-weakened assignment a failure would not be a type error.
            for clause in concrete_clauses:
                hypotheses, sorts = self._clause_hypotheses(clause, candidate)
                goal = apply_solution(clause.head.expr, solution, self.kvar_decls)
                stats.queries += 1
                stats.from_scratch += 1
                answer = validity_answer(hypotheses, goal, sorts)
                if answer.result is SatResult.UNKNOWN:
                    # Not proved, but not refuted either: surface the budget
                    # exhaustion as a structured error, never as a silent
                    # pass (and not as a type error, since there is no
                    # counterexample).
                    errors.append(
                        FixpointError(
                            clause,
                            kind=SOLVER_UNKNOWN,
                            detail=answer.reason or "solver returned unknown",
                            hypotheses=tuple(hypotheses),
                            goal=goal,
                        )
                    )
                elif not answer.is_unsat:
                    # One query serves both the verdict and the model — the
                    # raw material of the counterexample shown to the user.
                    model = dict(answer.model) if answer.is_sat and answer.model is not None else None
                    if model is not None:
                        # Binders absent from the model are don't-cares (they
                        # were simplified away or their atoms were never
                        # assigned), so any value — pick 0/false — extends the
                        # refutation.  This keeps counterexamples concrete
                        # even for tautologically false obligations.
                        for binder_name, _ in clause.binders:
                            model.setdefault(binder_name, 0)
                    errors.append(
                        FixpointError(
                            clause,
                            hypotheses=tuple(hypotheses),
                            goal=goal,
                            model=model,
                        )
                    )

        result = FixpointResult(
            solution=solution,
            errors=errors,
            iterations=stats.iterations,
            smt_queries=stats.queries,
            elapsed=time.perf_counter() - started,
            from_scratch_solves=stats.from_scratch,
            assumption_checks=stats.assumption_checks,
            incremental_hits=max(0, stats.assumption_checks - stats.contexts_built),
            clauses_retained=stats.clauses_retained,
            budget_exhausted=bool(budget_errors),
            batched_checks=stats.batched_checks,
            theory_propagations=stats.theory_propagations,
            partial_checks=stats.partial_checks,
            core_shrink_rounds=stats.core_shrink_rounds,
            shrink_budget_hits=stats.shrink_budget_hits,
            explanations=stats.explanations,
            explanation_literals=stats.explanation_literals,
            sat_restarts=stats.sat_restarts,
            sat_clauses_deleted=stats.sat_clauses_deleted,
            sat_learned=stats.sat_learned,
            sat_lbd_total=stats.sat_lbd_total,
            sat_phase_saving_hits=stats.sat_phase_saving_hits,
            sat_time=stats.sat_time,
            theory_time=stats.theory_time,
        )
        _emit_fixpoint_metrics(result, strategy)
        return result

    # -- weakening strategies ----------------------------------------------------

    def _weaken_worklist(
        self,
        kvar_clauses: List[FlatConstraint],
        candidate: Dict[str, List[Expr]],
        stats: _RunStats,
    ) -> List[FixpointError]:
        """Weaken to the greatest fixpoint, worklist-scheduled.

        ``dependents[κ]`` lists the clauses whose *hypotheses* mention κ:
        those are exactly the clauses whose checks can newly fail when κ is
        weakened.  (A clause whose only link to κ is its own head needs no
        revisit — its kept qualifiers were proved under hypotheses that did
        not change.)
        """
        dependents: Dict[str, List[int]] = {}
        for index, clause in enumerate(kvar_clauses):
            mentioned: Set[str] = set()
            for hypothesis in clause.hypotheses:
                mentioned |= kvars_of(hypothesis)
            for name in mentioned:
                dependents.setdefault(name, []).append(index)

        contexts: List[object] = [None] * len(kvar_clauses)
        # Per-clause counterexample caches: κ solutions only ever weaken, so
        # a model that once satisfied a clause's hypotheses satisfies every
        # later (weaker) version of them — old witnesses keep discarding
        # qualifiers for free on every revisit.
        witnesses: List[List[Dict[str, object]]] = [[] for _ in kvar_clauses]
        queue = deque(range(len(kvar_clauses)))
        queued = set(queue)
        budget_errors: List[FixpointError] = []
        while queue:
            index = queue.popleft()
            queued.discard(index)
            stats.iterations += 1
            if stats.iterations > self.max_iterations:
                budget_errors = self._budget_errors([index, *queue], kvar_clauses)
                break
            clause = kvar_clauses[index]
            head_name = clause.head.kvar.name
            current = candidate[head_name]
            if not current:
                continue
            with obs_span("fixpoint.clause", head=head_name, tag=clause.tag):
                hypotheses, sorts = self._clause_hypotheses(clause, candidate)
                kept = self._surviving_qualifiers(
                    index, clause, hypotheses, sorts, current, contexts, witnesses, stats
                )
            if len(kept) != len(current):
                candidate[head_name] = kept
                for dependent in dependents.get(head_name, ()):
                    if dependent not in queued:
                        queued.add(dependent)
                        queue.append(dependent)
        for context in contexts:
            if isinstance(context, IncrementalSolver):
                stats.absorb_context(context)
        return budget_errors

    def _weaken_naive(
        self,
        kvar_clauses: List[FlatConstraint],
        candidate: Dict[str, List[Expr]],
        stats: _RunStats,
    ) -> List[FixpointError]:
        """The historical dirty-set rescan with one-shot queries (oracle)."""
        clause_kvars: List[Set[str]] = []
        for clause in kvar_clauses:
            mentioned: Set[str] = set(kvars_of(clause.head.expr))
            for hypothesis in clause.hypotheses:
                mentioned |= kvars_of(hypothesis)
            clause_kvars.append(mentioned)

        dirty: Set[str] = set(candidate.keys())
        first_round = True
        while dirty or first_round:
            newly_dirty: Set[str] = set()
            for index, (clause, mentioned) in enumerate(zip(kvar_clauses, clause_kvars)):
                if not first_round and not (mentioned & dirty):
                    continue
                stats.iterations += 1
                if stats.iterations > self.max_iterations:
                    # Everything still scheduled: the interrupted clause, the
                    # rest of the current round, and every clause the next
                    # round would revisit because of fresh weakenings.
                    pending = [index]
                    for later in range(index + 1, len(kvar_clauses)):
                        if first_round or (clause_kvars[later] & dirty):
                            pending.append(later)
                    for other in range(len(kvar_clauses)):
                        if clause_kvars[other] & newly_dirty:
                            pending.append(other)
                    return self._budget_errors(pending, kvar_clauses)
                head_name = clause.head.kvar.name
                current = candidate[head_name]
                if not current:
                    continue
                hypotheses, sorts = self._clause_hypotheses(clause, candidate)
                kept: List[Expr] = []
                decl = self.kvar_decls[head_name]
                for qualifier in current:
                    goal = self._instantiate_head(qualifier, decl, clause.head.kvar)
                    stats.queries += 1
                    stats.from_scratch += 1
                    answer = validity_answer(hypotheses, goal, sorts)
                    if answer.is_unsat:
                        kept.append(qualifier)
                    else:
                        newly_dirty.add(head_name)
                        if answer.result is SatResult.UNKNOWN:
                            reason = answer.reason or "solver returned unknown"
                            stats.record_unknown(
                                clause, f"{reason} (qualifier: {qualifier})"
                            )
                candidate[head_name] = kept
            dirty = newly_dirty
            first_round = False
        return []

    def _budget_errors(
        self, pending: Sequence[int], kvar_clauses: List[FlatConstraint]
    ) -> List[FixpointError]:
        detail = f"max_iterations={self.max_iterations}"
        seen: Set[int] = set()
        errors: List[FixpointError] = []
        for index in pending:
            if index in seen:
                continue
            seen.add(index)
            errors.append(
                FixpointError(kvar_clauses[index], kind=BUDGET_EXHAUSTED, detail=detail)
            )
        return errors

    # -- qualifier filtering -----------------------------------------------------

    def _surviving_qualifiers(
        self,
        index: int,
        clause: FlatConstraint,
        hypotheses: List[Expr],
        sorts: Dict[str, Sort],
        current: List[Expr],
        contexts: List[object],
        witnesses: List[List[Dict[str, object]]],
        stats: _RunStats,
    ) -> List[Expr]:
        """Qualifiers of ``current`` implied by the clause's hypotheses."""
        decl = self.kvar_decls[clause.head.kvar.name]
        goals = [
            (qualifier, self._instantiate_head(qualifier, decl, clause.head.kvar))
            for qualifier in current
        ]
        if contexts[index] is not _ONESHOT and any(
            has_quantifier(hypothesis) for hypothesis in hypotheses
        ):
            contexts[index] = _ONESHOT
        if contexts[index] is not _ONESHOT:
            before = (
                stats.queries,
                stats.from_scratch,
                stats.assumption_checks,
                stats.contexts_built,
                stats.batched_checks,
            )
            try:
                return self._filter_incremental(
                    index, clause, hypotheses, sorts, goals, contexts, witnesses, stats
                )
            except SmtError:
                # Outside the incremental fragment (non-linear after
                # substitution, sort clash, ...): permanently demote this
                # clause to the one-shot path, which has its own handling.
                # Counters roll back so the aborted attempt's checks are not
                # double-counted on top of the full one-shot re-run below;
                # clauses the discarded solver retained over its lifetime
                # stay counted since the final summation no longer sees it.
                demoted = contexts[index]
                if isinstance(demoted, IncrementalSolver):
                    stats.absorb_context(demoted)
                contexts[index] = _ONESHOT
                (
                    stats.queries,
                    stats.from_scratch,
                    stats.assumption_checks,
                    stats.contexts_built,
                    stats.batched_checks,
                ) = before
        kept: List[Expr] = []
        for qualifier, goal in goals:
            stats.queries += 1
            stats.from_scratch += 1
            answer = validity_answer(hypotheses, goal, sorts)
            if answer.is_unsat:
                kept.append(qualifier)
            elif answer.result is SatResult.UNKNOWN:
                reason = answer.reason or "solver returned unknown"
                stats.record_unknown(clause, f"{reason} (qualifier: {qualifier})")
        return kept

    def _build_context(self, sorts: Dict[str, Sort]) -> IncrementalSolver:
        if self.max_theory_rounds is None:
            return IncrementalSolver(dict(sorts))
        return IncrementalSolver(dict(sorts), max_theory_rounds=self.max_theory_rounds)

    def _filter_incremental(
        self,
        index: int,
        clause: FlatConstraint,
        hypotheses: List[Expr],
        sorts: Dict[str, Sort],
        goals: List[Tuple[Expr, Expr]],
        contexts: List[object],
        witnesses: List[List[Dict[str, object]]],
        stats: _RunStats,
    ) -> List[Expr]:
        """One clause visit on the incremental backend, core-batched.

        Hypotheses are asserted once in a fresh ``push`` scope.  Instead of
        one assumption check per candidate qualifier, the *conjunction* of
        all pending candidates is tested in a single ``check_sat_assuming``
        call: an UNSAT answer proves every candidate implied at once, while
        a SAT answer's model is a concrete witness that refutes — and hence
        discards — every candidate it falsifies.  Iterating on the
        survivors converges in a handful of queries where the per-qualifier
        loop needed one each, and the final UNSAT certificate makes the kept
        set bit-identical to the one-at-a-time oracle.  Undecidable corners
        (models outside the evaluable fragment, unknown answers) fall back
        to exact per-qualifier checks.
        """
        solver = contexts[index]
        if not isinstance(solver, IncrementalSolver):
            solver = self._build_context(sorts)
            contexts[index] = solver
            stats.contexts_built += 1
            stats.from_scratch += 1
        else:
            solver.declare_sorts(sorts)
        # Session-level SMT statistics are committed only once the whole
        # visit succeeds: if a goal aborts the visit with an SmtError, the
        # one-shot re-run does its own recording and an eager commit here
        # would double-count the aborted checks.  Quantified goals (which
        # need the skolemising one-shot interface, whose recording cannot be
        # deferred) run after the abort-prone incremental block for the same
        # reason.
        survived: Dict[int, bool] = {}
        quantified: List[int] = []
        pending: List[int] = []
        for position, (_, goal) in enumerate(goals):
            if has_quantifier(goal):
                quantified.append(position)
            else:
                pending.append(position)
        incremental_records: List[Tuple[object, float]] = []

        def checked(goal: Expr):
            started = time.perf_counter()
            answer = solver.check_valid_detailed(goal)
            incremental_records.append((answer, time.perf_counter() - started))
            return answer

        def check_individually(
            positions: List[int],
            unevaluable: Optional[Dict[int, str]] = None,
        ) -> None:
            for position in positions:
                stats.queries += 1
                stats.assumption_checks += 1
                answer = checked(goals[position][1])
                survived[position] = answer.is_unsat
                if answer.result is SatResult.UNKNOWN:
                    # Name the candidate, not just the clause tag: a
                    # fuzzer-minimized repro usually has one clause but many
                    # qualifiers, and the detail must say which one stalled.
                    reason = answer.reason or "solver returned unknown"
                    detail = f"{reason} (qualifier: {goals[position][0]})"
                    if unevaluable and position in unevaluable:
                        detail += (
                            "; model evaluation left the decidable fragment"
                            f" at {unevaluable[position]}"
                        )
                    stats.record_unknown(clause, detail)

        # Cached counterexamples discard for free before any query is made:
        # each was a genuine model of this clause's (then stronger)
        # hypotheses, so anything it falsifies is still not implied.
        cache = witnesses[index]
        for model in cache:
            falsified = [
                position
                for position in pending
                if _goal_refuted_by(goals[position][1], model)
            ]
            if falsified:
                for position in falsified:
                    survived[position] = False
                dropped = set(falsified)
                pending = [p for p in pending if p not in dropped]

        solver.push()
        try:
            for hypothesis in hypotheses:
                solver.assert_expr(simplify(hypothesis))
            while pending:
                if len(pending) == 1:
                    check_individually(pending)
                    break
                stats.queries += 1
                stats.assumption_checks += 1
                stats.batched_checks += 1
                started = time.perf_counter()
                answer = solver.refute_any([goals[p][1] for p in pending])
                incremental_records.append((answer, time.perf_counter() - started))
                if answer.is_unsat:
                    for position in pending:
                        survived[position] = True
                    break
                if not answer.is_sat or answer.model is None:
                    if answer.result is SatResult.UNKNOWN:
                        reason = answer.reason or "solver returned unknown"
                        batch = ", ".join(str(goals[p][0]) for p in pending)
                        stats.record_unknown(
                            clause, f"{reason} (batched candidates: {batch})"
                        )
                    check_individually(pending)
                    break
                # Evaluate against the *full* model: goals routinely mention
                # internal (__-prefixed) binders that the user-facing model
                # hides, and a default value for a constrained variable
                # would mis-evaluate the goal.
                model = answer.full_model or answer.model
                falsified = [
                    position
                    for position in pending
                    if _goal_refuted_by(goals[position][1], model)
                ]
                if not falsified:
                    # The witness falsifies only goals outside the evaluable
                    # fragment; decide the remainder exactly, one by one,
                    # remembering which qualifier's goal broke evaluation so
                    # any UNKNOWN fallback can point at the offender.
                    unevaluable: Dict[int, str] = {}
                    for position in pending:
                        failure = _goal_eval_failure(goals[position][1], model)
                        if failure is not None:
                            unevaluable[position] = failure
                    check_individually(pending, unevaluable)
                    break
                if len(cache) >= _WITNESS_CACHE_LIMIT:
                    cache.pop(0)
                cache.append(model)
                for position in falsified:
                    survived[position] = False
                dropped = set(falsified)
                pending = [p for p in pending if p not in dropped]
        finally:
            solver.pop()
        if incremental_records:
            record = current_context().stats
            for answer, elapsed in incremental_records:
                record.record(answer, elapsed)
            record.bump("incremental_checks", len(incremental_records))
        for position in quantified:
            qualifier, goal = goals[position]
            stats.queries += 1
            stats.from_scratch += 1
            answer = validity_answer(hypotheses, goal, sorts)
            survived[position] = answer.is_unsat
            if answer.result is SatResult.UNKNOWN:
                reason = answer.reason or "solver returned unknown"
                stats.record_unknown(clause, f"{reason} (qualifier: {qualifier})")
        return [
            qualifier
            for position, (qualifier, _) in enumerate(goals)
            if survived.get(position)
        ]

    # -- helpers ----------------------------------------------------------------

    def _check_kvars_known(self, clauses: List[FlatConstraint]) -> None:
        for clause in clauses:
            if clause.head.is_kvar and clause.head.kvar.name not in self.kvar_decls:
                raise ConstraintError(
                    f"κ variable {clause.head.kvar.name} used but never declared"
                )

    def _clause_hypotheses(
        self, clause: FlatConstraint, candidate: Dict[str, List[Expr]]
    ) -> Tuple[List[Expr], Dict[str, Sort]]:
        solution = {name: and_(*predicates) for name, predicates in candidate.items()}
        hypotheses = [
            apply_solution(hypothesis, solution, self.kvar_decls)
            for hypothesis in clause.hypotheses
        ]
        sorts = clause.sort_env
        return hypotheses, sorts

    def _instantiate_head(self, qualifier: Expr, decl: KVarDecl, application: KVar) -> Expr:
        mapping = {
            formal: actual for (formal, _), actual in zip(decl.params, application.args)
        }
        return substitute(qualifier, mapping)
