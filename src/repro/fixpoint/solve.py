"""Predicate-abstraction fixpoint solver for Horn constraints with κ variables.

Algorithm (the "liquid inference" of §4.2, phase 3):

1. Initialise every κ to the conjunction of *all* its qualifier instances
   (the strongest candidate solution).
2. Repeatedly pick a constraint whose head is a κ application and whose body
   (with the current assignment substituted in) does not imply some qualifier
   in the head κ's set; *weaken* the κ by dropping that qualifier.  Because
   sets only shrink and are finite, this terminates.
3. When no more weakening is needed, check every concrete-head constraint
   under the final assignment; failures are reported with their provenance
   tags — these are the type errors shown to the user.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.logic.expr import (
    App,
    BinOp,
    Expr,
    Forall,
    Ite,
    KVar,
    TRUE,
    UnaryOp,
    and_,
)
from repro.logic.simplify import simplify
from repro.logic.sorts import INT, Sort
from repro.logic.subst import free_vars, kvars_of, substitute
from repro.smt import is_valid
from repro.fixpoint.constraint import (
    Constraint,
    ConstraintError,
    FlatConstraint,
    KVarDecl,
    flatten,
)
from repro.fixpoint.qualifiers import Qualifier, default_qualifiers, instantiate_qualifiers


Solution = Dict[str, Expr]
"""Maps κ names to predicates over the κ's formal parameters."""


@dataclass
class FixpointError:
    """A constraint that remains invalid under the weakest viable assignment."""

    constraint: FlatConstraint

    @property
    def tag(self) -> str:
        return self.constraint.tag

    def __str__(self) -> str:
        return f"invalid constraint {self.constraint.describe()}"


@dataclass
class FixpointResult:
    solution: Solution
    errors: List[FixpointError]
    iterations: int = 0
    smt_queries: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.errors


def apply_solution(expr: Expr, solution: Solution, decls: Dict[str, KVarDecl]) -> Expr:
    """Substitute solved κ applications inside ``expr``."""
    if isinstance(expr, KVar):
        decl = decls.get(expr.name)
        if decl is None:
            raise ConstraintError(f"unknown κ variable {expr.name}")
        body = solution.get(expr.name, TRUE)
        mapping = {
            formal: apply_solution(actual, solution, decls)
            for (formal, _), actual in zip(decl.params, expr.args)
        }
        return substitute(body, mapping)
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            apply_solution(expr.lhs, solution, decls),
            apply_solution(expr.rhs, solution, decls),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, apply_solution(expr.operand, solution, decls))
    if isinstance(expr, Ite):
        return Ite(
            apply_solution(expr.cond, solution, decls),
            apply_solution(expr.then, solution, decls),
            apply_solution(expr.otherwise, solution, decls),
        )
    if isinstance(expr, App):
        return App(
            expr.func,
            tuple(apply_solution(a, solution, decls) for a in expr.args),
            expr.sort,
        )
    if isinstance(expr, Forall):
        return Forall(expr.binders, apply_solution(expr.body, solution, decls))
    return expr


@dataclass
class FixpointSolver:
    """Solver instance; create one per verification task."""

    kvar_decls: Dict[str, KVarDecl] = field(default_factory=dict)
    qualifiers: Sequence[Qualifier] = field(default_factory=default_qualifiers)
    max_iterations: int = 10000

    def declare(self, decl: KVarDecl) -> None:
        self.kvar_decls[decl.name] = decl

    # -- main entry point ------------------------------------------------------

    def solve(self, constraint: Constraint) -> FixpointResult:
        started = time.perf_counter()
        clauses = flatten(constraint)
        self._check_kvars_known(clauses)

        candidate: Dict[str, List[Expr]] = {
            name: instantiate_qualifiers(decl, self.qualifiers)
            for name, decl in self.kvar_decls.items()
        }

        kvar_clauses = [clause for clause in clauses if clause.head.is_kvar]
        concrete_clauses = [clause for clause in clauses if not clause.head.is_kvar]

        # Which κ variables each clause depends on (head and hypotheses): a
        # clause only needs to be re-checked when one of them was weakened.
        clause_kvars: List[Set[str]] = []
        for clause in kvar_clauses:
            mentioned: Set[str] = set(kvars_of(clause.head.expr))
            for hypothesis in clause.hypotheses:
                mentioned |= kvars_of(hypothesis)
            clause_kvars.append(mentioned)

        iterations = 0
        queries = 0
        dirty: Set[str] = set(candidate.keys())
        first_round = True
        while dirty or first_round:
            newly_dirty: Set[str] = set()
            for clause, mentioned in zip(kvar_clauses, clause_kvars):
                if not first_round and not (mentioned & dirty):
                    continue
                iterations += 1
                if iterations > self.max_iterations:
                    raise ConstraintError("liquid fixpoint iteration budget exhausted")
                head_kvar = clause.head.kvar
                decl = self.kvar_decls[head_kvar.name]
                kept: List[Expr] = []
                current = candidate[head_kvar.name]
                if not current:
                    continue
                hypotheses, sorts = self._clause_hypotheses(clause, candidate)
                for qualifier in current:
                    goal = self._instantiate_head(qualifier, decl, head_kvar)
                    queries += 1
                    if is_valid(hypotheses, goal, sorts):
                        kept.append(qualifier)
                    else:
                        newly_dirty.add(head_kvar.name)
                candidate[head_kvar.name] = kept
            dirty = newly_dirty
            first_round = False

        solution: Solution = {
            name: simplify(and_(*predicates)) for name, predicates in candidate.items()
        }

        errors: List[FixpointError] = []
        for clause in concrete_clauses:
            hypotheses, sorts = self._clause_hypotheses(clause, candidate)
            goal = apply_solution(clause.head.expr, solution, self.kvar_decls)
            queries += 1
            if not is_valid(hypotheses, goal, sorts):
                errors.append(FixpointError(clause))

        return FixpointResult(
            solution=solution,
            errors=errors,
            iterations=iterations,
            smt_queries=queries,
            elapsed=time.perf_counter() - started,
        )

    # -- helpers ----------------------------------------------------------------

    def _check_kvars_known(self, clauses: List[FlatConstraint]) -> None:
        for clause in clauses:
            if clause.head.is_kvar and clause.head.kvar.name not in self.kvar_decls:
                raise ConstraintError(
                    f"κ variable {clause.head.kvar.name} used but never declared"
                )

    def _clause_hypotheses(
        self, clause: FlatConstraint, candidate: Dict[str, List[Expr]]
    ) -> Tuple[List[Expr], Dict[str, Sort]]:
        solution = {name: and_(*predicates) for name, predicates in candidate.items()}
        hypotheses = [
            apply_solution(hypothesis, solution, self.kvar_decls)
            for hypothesis in clause.hypotheses
        ]
        sorts = clause.sort_env
        return hypotheses, sorts

    def _instantiate_head(self, qualifier: Expr, decl: KVarDecl, application: KVar) -> Expr:
        mapping = {
            formal: actual for (formal, _), actual in zip(decl.params, application.args)
        }
        return substitute(qualifier, mapping)
