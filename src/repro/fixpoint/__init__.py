"""Liquid-fixpoint style Horn constraint solving.

The checking phase of Flux produces a tree of Horn constraints whose heads
may be unknown predicates (κ variables); the inference phase (§4.2, phase 3)
solves them by predicate abstraction over a finite set of quantifier-free
qualifiers, following Cosman & Jhala's local refinement typing and the
original Liquid Types recipe: start from the conjunction of all qualifiers
and iteratively weaken each κ until every constraint is respected, then check
the remaining concrete-head constraints.
"""

from repro.fixpoint.constraint import (
    Constraint,
    ConstraintError,
    FlatConstraint,
    Head,
    KVarDecl,
    attach_span,
    c_conj,
    c_forall,
    c_implies,
    c_pred,
    flatten,
)
from repro.fixpoint.qualifiers import Qualifier, default_qualifiers, instantiate_qualifiers
from repro.fixpoint.solve import (
    BUDGET_EXHAUSTED,
    DEFAULT_STRATEGY,
    INVALID,
    SOLVER_UNKNOWN,
    FixpointError,
    FixpointResult,
    FixpointSolver,
    Solution,
    apply_solution,
)

__all__ = [
    "BUDGET_EXHAUSTED",
    "DEFAULT_STRATEGY",
    "INVALID",
    "SOLVER_UNKNOWN",
    "FixpointError",
    "Constraint",
    "ConstraintError",
    "FlatConstraint",
    "Head",
    "KVarDecl",
    "attach_span",
    "c_conj",
    "c_forall",
    "c_implies",
    "c_pred",
    "flatten",
    "Qualifier",
    "default_qualifiers",
    "instantiate_qualifiers",
    "FixpointResult",
    "FixpointSolver",
    "Solution",
    "apply_solution",
]
