"""Horn constraint trees and their flattening into clause form.

The checker builds *nested* constraints that mirror the typing derivation
(binders introduced by `unpack`, hypotheses introduced by branch conditions,
obligations produced by subtyping).  The solver works on the *flattened*
form: a list of clauses ``binders; hypotheses |- head`` where the head is
either a concrete predicate or an application of a κ variable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.lang.span import Span
from repro.logic.expr import Expr, KVar, TRUE
from repro.logic.sorts import Sort


class ConstraintError(Exception):
    """Raised on malformed constraints (e.g. unknown κ variables)."""


@dataclass(frozen=True)
class KVarDecl:
    """Declaration of an unknown refinement predicate κ.

    ``params`` are the formal parameters (name and sort); by convention the
    first parameter is the "value" variable of the refined type and the rest
    are program refinement variables in scope at the kvar's creation point.
    """

    name: str
    params: Tuple[Tuple[str, Sort], ...]

    @property
    def arity(self) -> int:
        return len(self.params)


# -- constraint tree ---------------------------------------------------------


@dataclass(frozen=True)
class Pred:
    """Leaf obligation: prove ``expr`` (a concrete predicate or a κ application).

    ``span`` is the source region the obligation blames — the surface
    expression whose checking produced it.  Like every span it is
    provenance only and excluded from equality.
    """

    expr: Expr
    tag: str = ""
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Conj:
    parts: Tuple["Constraint", ...]


@dataclass(frozen=True)
class ForallCstr:
    """``forall var:sort. hypothesis => body``."""

    var: str
    sort: Sort
    hypothesis: Expr
    body: "Constraint"


@dataclass(frozen=True)
class ImplCstr:
    """``hypothesis => body`` without introducing a binder."""

    hypothesis: Expr
    body: "Constraint"


Constraint = Union[Pred, Conj, ForallCstr, ImplCstr]


def c_pred(expr: Expr, tag: str = "", span: Optional[Span] = None) -> Constraint:
    return Pred(expr, tag, span)


def attach_span(constraint: Constraint, span: Optional[Span]) -> Constraint:
    """Stamp ``span`` onto every ``Pred`` leaf that does not carry one yet.

    The checker calls this at constraint-emission time: the subtyping rules
    build their obligation trees without source knowledge, and the checker
    knows which MIR statement (and so which surface expression) it is
    processing.
    """
    if span is None:
        return constraint
    if isinstance(constraint, Pred):
        if constraint.span is not None:
            return constraint
        return Pred(constraint.expr, constraint.tag, span)
    if isinstance(constraint, Conj):
        return Conj(tuple(attach_span(part, span) for part in constraint.parts))
    if isinstance(constraint, ForallCstr):
        return ForallCstr(
            constraint.var,
            constraint.sort,
            constraint.hypothesis,
            attach_span(constraint.body, span),
        )
    if isinstance(constraint, ImplCstr):
        return ImplCstr(constraint.hypothesis, attach_span(constraint.body, span))
    raise ConstraintError(f"unknown constraint node {constraint!r}")


def c_conj(*parts: Constraint) -> Constraint:
    flattened: List[Constraint] = []
    for part in parts:
        if isinstance(part, Conj):
            flattened.extend(part.parts)
        elif isinstance(part, Pred) and part.expr == TRUE and not part.tag:
            continue
        else:
            flattened.append(part)
    if len(flattened) == 1:
        return flattened[0]
    return Conj(tuple(flattened))


def c_forall(var: str, sort: Sort, hypothesis: Expr, body: Constraint) -> Constraint:
    return ForallCstr(var, sort, hypothesis, body)


def c_implies(hypothesis: Expr, body: Constraint) -> Constraint:
    if hypothesis == TRUE:
        return body
    return ImplCstr(hypothesis, body)


# -- flattened clause form ----------------------------------------------------


@dataclass
class Head:
    """Head of a flat constraint: concrete predicate or κ application."""

    expr: Expr

    @property
    def is_kvar(self) -> bool:
        return isinstance(self.expr, KVar)

    @property
    def kvar(self) -> KVar:
        if not isinstance(self.expr, KVar):
            raise ConstraintError("head is not a κ application")
        return self.expr


@dataclass
class FlatConstraint:
    """A clause ``binders; hypotheses |- head`` with a provenance tag and span."""

    binders: List[Tuple[str, Sort]] = field(default_factory=list)
    hypotheses: List[Expr] = field(default_factory=list)
    head: Head = field(default_factory=lambda: Head(TRUE))
    tag: str = ""
    span: Optional[Span] = None

    @property
    def sort_env(self) -> Dict[str, Sort]:
        return {name: sort for name, sort in self.binders}

    def describe(self) -> str:
        hypotheses = ", ".join(str(h) for h in self.hypotheses) or "true"
        return f"[{self.tag}] {hypotheses} |- {self.head.expr}"


def flatten(constraint: Constraint) -> List[FlatConstraint]:
    """Flatten a constraint tree into clause form."""
    result: List[FlatConstraint] = []
    _flatten(constraint, [], [], result)
    return result


def _flatten(
    constraint: Constraint,
    binders: List[Tuple[str, Sort]],
    hypotheses: List[Expr],
    out: List[FlatConstraint],
) -> None:
    if isinstance(constraint, Pred):
        if constraint.expr == TRUE and not constraint.tag:
            return
        out.append(
            FlatConstraint(
                binders=list(binders),
                hypotheses=list(hypotheses),
                head=Head(constraint.expr),
                tag=constraint.tag,
                span=constraint.span,
            )
        )
        return
    if isinstance(constraint, Conj):
        for part in constraint.parts:
            _flatten(part, binders, hypotheses, out)
        return
    if isinstance(constraint, ForallCstr):
        binders.append((constraint.var, constraint.sort))
        added_hypothesis = constraint.hypothesis != TRUE
        if added_hypothesis:
            hypotheses.append(constraint.hypothesis)
        _flatten(constraint.body, binders, hypotheses, out)
        if added_hypothesis:
            hypotheses.pop()
        binders.pop()
        return
    if isinstance(constraint, ImplCstr):
        added_hypothesis = constraint.hypothesis != TRUE
        if added_hypothesis:
            hypotheses.append(constraint.hypothesis)
        _flatten(constraint.body, binders, hypotheses, out)
        if added_hypothesis:
            hypotheses.pop()
        return
    raise ConstraintError(f"unknown constraint node {constraint!r}")
