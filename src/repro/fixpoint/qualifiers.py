"""Qualifier templates for liquid inference.

A *qualifier* is a quantifier-free predicate over a distinguished value
variable ``v`` and hole variables; liquid inference searches for solutions to
κ variables among conjunctions of qualifier instances.  The default set below
follows the classic Liquid Types qualifiers (comparisons of the value against
zero, against the other parameters in scope, and off-by-one variants), which
is exactly the vocabulary needed by the paper's benchmarks: loop counters,
vector lengths, and index bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.logic.expr import BinOp, Expr, Var, add, sub, binop
from repro.logic.sorts import BOOL, INT, Sort
from repro.logic.subst import substitute
from repro.fixpoint.constraint import KVarDecl


@dataclass(frozen=True)
class Qualifier:
    """A template predicate over the value variable ``v`` and holes ``x0..xn``.

    ``hole_sorts`` gives the required sort for each hole; instantiation fills
    holes with κ parameters of matching sorts (all distinct from the value).
    """

    name: str
    expr: Expr
    hole_sorts: Tuple[Sort, ...] = ()
    value_sort: Sort = INT

    def instantiate(self, value: Expr, holes: Sequence[Expr]) -> Expr:
        mapping: Dict[str, Expr] = {"v": value}
        for index, hole in enumerate(holes):
            mapping[f"x{index}"] = hole
        return substitute(self.expr, mapping)


def _cmp(op: str, rhs: Expr) -> Expr:
    return binop(op, Var("v"), rhs)


def default_qualifiers() -> List[Qualifier]:
    """The default qualifier vocabulary (§4.2: "a small set of quantifier-free
    templates")."""
    from repro.logic.expr import IntConst

    zero = IntConst(0)
    one = IntConst(1)
    hole = Var("x0")
    qualifiers = [
        Qualifier("ge-zero", _cmp(">=", zero)),
        Qualifier("gt-zero", _cmp(">", zero)),
        Qualifier("le-zero", _cmp("<=", zero)),
        Qualifier("eq-zero", _cmp("=", zero)),
        Qualifier("eq-one", _cmp("=", one)),
        Qualifier("le-one", _cmp("<=", one)),
        Qualifier("ge-one", _cmp(">=", one)),
        Qualifier("eq-hole", _cmp("=", hole), (INT,)),
        Qualifier("le-hole", _cmp("<=", hole), (INT,)),
        Qualifier("lt-hole", _cmp("<", hole), (INT,)),
        Qualifier("ge-hole", _cmp(">=", hole), (INT,)),
        Qualifier("gt-hole", _cmp(">", hole), (INT,)),
        Qualifier("eq-hole-plus-one", _cmp("=", add(hole, 1)), (INT,)),
        Qualifier("eq-hole-minus-one", _cmp("=", sub(hole, 1)), (INT,)),
        Qualifier("le-hole-plus-one", _cmp("<=", add(hole, 1)), (INT,)),
        Qualifier("eq-sum", _cmp("=", add(Var("x0"), Var("x1"))), (INT, INT)),
        Qualifier("bool-true", Var("v", BOOL), (), BOOL),
        Qualifier(
            "bool-false",
            binop("=", Var("v", BOOL), Var("x0", BOOL)),
            (BOOL,),
            BOOL,
        ),
    ]
    # Boolean values flowing out of comparisons: the join of `true` under `p`
    # and `false` under `!p` is captured by qualifiers of the form
    # ``v <=> x0 <op> x1`` (and against zero).  These let Flux give precise
    # types to functions like `is_pos` that reify a comparison as a bool.
    bool_value = Var("v", BOOL)
    for op_name, op in (("gt", ">"), ("ge", ">="), ("lt", "<"), ("le", "<="), ("eq", "=")):
        qualifiers.append(
            Qualifier(
                f"iff-{op_name}-zero",
                binop("<=>", bool_value, binop(op, Var("x0"), zero)),
                (INT,),
                BOOL,
            )
        )
        qualifiers.append(
            Qualifier(
                f"iff-{op_name}-hole",
                binop("<=>", bool_value, binop(op, Var("x0"), Var("x1"))),
                (INT, INT),
                BOOL,
            )
        )
    return qualifiers


def instantiate_qualifiers(
    decl: KVarDecl, qualifiers: Sequence[Qualifier]
) -> List[Expr]:
    """All well-sorted instantiations of ``qualifiers`` for a κ declaration.

    The κ's first parameter plays the role of the value variable ``v``; the
    remaining parameters fill the holes.  Instantiated predicates are
    expressed over the κ's *formal* parameter names so they can later be
    substituted with actual arguments.
    """
    if not decl.params:
        return []
    value_name, value_sort = decl.params[0]
    others = decl.params[1:]
    value = Var(value_name, value_sort)
    instances: List[Expr] = []
    seen = set()
    for qualifier in qualifiers:
        if qualifier.value_sort != value_sort:
            continue
        for holes in _hole_assignments(qualifier.hole_sorts, others):
            instance = qualifier.instantiate(value, holes)
            if instance not in seen:
                seen.add(instance)
                instances.append(instance)
    return instances


def _hole_assignments(
    hole_sorts: Tuple[Sort, ...], params: Tuple[Tuple[str, Sort], ...]
) -> List[List[Expr]]:
    if not hole_sorts:
        return [[]]
    assignments: List[List[Expr]] = [[]]
    for sort in hole_sorts:
        candidates = [Var(name, psort) for name, psort in params if psort == sort]
        if not candidates:
            return []
        next_assignments = []
        for partial in assignments:
            for candidate in candidates:
                if any(candidate == chosen for chosen in partial):
                    continue
                next_assignments.append(partial + [candidate])
        assignments = next_assignments
    return assignments
