"""Refinement sorts.

The paper's refinement logic is multi-sorted: refinement variables range over
``int``, ``bool`` and ``loc`` (abstract heap locations).  The baseline
verifier additionally uses ``real`` (for float-valued programs, where only
equality matters) and function sorts for uninterpreted functions such as the
``lookup`` sequence accessor used by Prusti-style specifications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Sort:
    """A base refinement sort, identified by name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class FuncSort:
    """Sort of an uninterpreted function: ``args -> result``."""

    args: Tuple[Sort, ...]
    result: Sort

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"({inner}) -> {self.result}"


INT = Sort("int")
BOOL = Sort("bool")
LOC = Sort("loc")
REAL = Sort("real")

_BY_NAME = {s.name: s for s in (INT, BOOL, LOC, REAL)}


def sort_from_name(name: str) -> Sort:
    """Look up a base sort by its surface name.

    Raises ``KeyError`` for unknown sort names so that signature elaboration
    reports bad ``refined_by`` clauses early.
    """
    return _BY_NAME[name]
