"""Expression AST for the refinement logic, with hash-consing.

Expressions are immutable and *interned* (hash-consed): constructing a node
with the same structure twice returns the same object, so

* structural equality is pointer equality (``__eq__`` is identity),
* ``hash`` is a precomputed integer read off the node,
* ``free_vars`` / ``kvars_of`` / ``has_quantifier`` are cached on the node at
  construction time from the (already interned) children, and
* traversals such as substitution and simplification can be memoised on the
  node object itself — dictionary lookups over interned nodes cost O(1)
  instead of a structural re-hash of the whole subtree.

This mirrors the cheap structural sharing the paper's Rust implementation
gets for free and is the backbone of the check-pipeline fast path.

The grammar mirrors the ``r`` production of Fig. 6 in the paper:

* variables, integer / boolean constants,
* equality, boolean connectives, linear integer arithmetic,
* plus three extensions used by the implementation:
  - ``Ite`` (if-then-else) terms, produced when joining indexed types,
  - ``KVar`` applications, the unknown Horn predicates of liquid inference,
  - ``Forall`` and uninterpreted ``App`` nodes, used only by the Prusti-style
    baseline for quantified container specifications.

Construction outside this module should go through the node classes'
interning constructors (``Var``, ``IntConst``, ...) for leaves and the smart
constructors (``and_``, ``binop``, ``unary``, ...) for interior nodes;
``tests/test_construction_guard.py`` enforces the latter for ``BinOp`` /
``UnaryOp``, whose smart constructors also validate the operator.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, Tuple, Union

from repro.logic.sorts import BOOL, INT, REAL, Sort

_EMPTY: FrozenSet[str] = frozenset()

#: The intern table.  Keys are per-class structural tuples; values are the
#: unique node for that structure.  Entries are kept alive for the lifetime
#: of the process (callers running many unrelated programs can reclaim the
#: memory with :func:`clear_intern_table`).
_INTERN: Dict[tuple, "Expr"] = {}
_INTERN_HITS = 0
_INTERN_MISSES = 0


def intern_stats() -> Dict[str, int]:
    """Intern-table observability for benchmarks and the service layer."""
    return {
        "intern_table_size": len(_INTERN),
        "intern_hits": _INTERN_HITS,
        "intern_misses": _INTERN_MISSES,
    }


def clear_intern_table() -> None:
    """Drop every interned node except the pinned shared constants.

    Only for long-lived processes between unrelated runs; any still-referenced
    expression keeps working (its caches live on the node), but re-built
    structures will no longer be identical to it, so memo caches keyed on old
    nodes must be cleared alongside (see :func:`repro.logic.clear_term_caches`).
    The module-level constants (``TRUE``/``FALSE``/``IntConst(0)``/
    ``IntConst(1)``) are re-seeded so identity checks against them stay valid
    across a clear.
    """
    _INTERN.clear()
    for constant in (TRUE, FALSE):
        _INTERN[("BoolConst", constant.value)] = constant
    for constant in (_ZERO, _ONE):
        _INTERN[("IntConst", constant.value)] = constant


class Expr:
    """Base class of all refinement expressions (interned, immutable)."""

    __slots__ = ("_hash", "_free", "_kvars", "_quant")

    def __hash__(self) -> int:
        return self._hash

    # Identity equality: interning makes structural equality and identity
    # coincide, so the default object ``__eq__``/``__ne__`` are exactly right.

    def __and__(self, other: "Expr") -> "Expr":
        return and_(self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return or_(self, other)

    def __invert__(self) -> "Expr":
        return not_(self)


class Var(Expr):
    """A refinement variable with its sort."""

    __slots__ = ("name", "sort")

    def __new__(cls, name: str, sort: Sort = INT) -> "Var":
        key = ("Var", name, sort)
        self = _INTERN.get(key)
        if self is None:
            global _INTERN_MISSES
            _INTERN_MISSES += 1
            self = object.__new__(cls)
            self.name = name
            self.sort = sort
            self._hash = hash(key)
            self._free = frozenset((name,))
            self._kvars = _EMPTY
            self._quant = False
            _INTERN[key] = self
        else:
            global _INTERN_HITS
            _INTERN_HITS += 1
        return self

    def __reduce__(self):
        return (Var, (self.name, self.sort))

    def __repr__(self) -> str:
        return f"Var({self.name!r}, {self.sort!r})"

    def __str__(self) -> str:
        return self.name


class IntConst(Expr):
    __slots__ = ("value",)

    def __new__(cls, value: int) -> "IntConst":
        value = int(value)  # normalise bools and int subclasses
        key = ("IntConst", value)
        self = _INTERN.get(key)
        if self is None:
            global _INTERN_MISSES
            _INTERN_MISSES += 1
            self = object.__new__(cls)
            self.value = value
            self._hash = hash(key)
            self._free = _EMPTY
            self._kvars = _EMPTY
            self._quant = False
            _INTERN[key] = self
        else:
            global _INTERN_HITS
            _INTERN_HITS += 1
        return self

    def __reduce__(self):
        return (IntConst, (self.value,))

    def __repr__(self) -> str:
        return f"IntConst({self.value!r})"

    def __str__(self) -> str:
        return str(self.value)


class RealConst(Expr):
    __slots__ = ("value",)

    def __new__(cls, value: Fraction) -> "RealConst":
        key = ("RealConst", value)
        self = _INTERN.get(key)
        if self is None:
            global _INTERN_MISSES
            _INTERN_MISSES += 1
            self = object.__new__(cls)
            self.value = value
            self._hash = hash(key)
            self._free = _EMPTY
            self._kvars = _EMPTY
            self._quant = False
            _INTERN[key] = self
        else:
            global _INTERN_HITS
            _INTERN_HITS += 1
        return self

    def __reduce__(self):
        return (RealConst, (self.value,))

    def __repr__(self) -> str:
        return f"RealConst({self.value!r})"

    def __str__(self) -> str:
        return str(self.value)


class BoolConst(Expr):
    __slots__ = ("value",)

    def __new__(cls, value: bool) -> "BoolConst":
        value = bool(value)
        key = ("BoolConst", value)
        self = _INTERN.get(key)
        if self is None:
            global _INTERN_MISSES
            _INTERN_MISSES += 1
            self = object.__new__(cls)
            self.value = value
            self._hash = hash(key)
            self._free = _EMPTY
            self._kvars = _EMPTY
            self._quant = False
            _INTERN[key] = self
        else:
            global _INTERN_HITS
            _INTERN_HITS += 1
        return self

    def __reduce__(self):
        return (BoolConst, (self.value,))

    def __repr__(self) -> str:
        return f"BoolConst({self.value!r})"

    def __str__(self) -> str:
        return "true" if self.value else "false"


TRUE = BoolConst(True)
FALSE = BoolConst(False)


#: Binary operators recognised by the logic.  Comparison and boolean
#: operators produce ``bool``-sorted terms; the arithmetic ones are
#: ``int``-sorted (``real`` when applied to real operands).
ARITH_OPS = frozenset({"+", "-", "*", "/", "%"})
CMP_OPS = frozenset({"=", "!=", "<", "<=", ">", ">="})
BOOL_OPS = frozenset({"&&", "||", "=>", "<=>"})
ALL_OPS = ARITH_OPS | CMP_OPS | BOOL_OPS


def _union(a: FrozenSet[str], b: FrozenSet[str]) -> FrozenSet[str]:
    if not b:
        return a
    if not a:
        return b
    return a | b


class BinOp(Expr):
    __slots__ = ("op", "lhs", "rhs")

    def __new__(cls, op: str, lhs: Expr, rhs: Expr) -> "BinOp":
        key = ("BinOp", op, lhs, rhs)
        self = _INTERN.get(key)
        if self is None:
            if op not in ALL_OPS:
                raise ValueError(f"unknown binary operator {op!r}")
            global _INTERN_MISSES
            _INTERN_MISSES += 1
            self = object.__new__(cls)
            self.op = op
            self.lhs = lhs
            self.rhs = rhs
            self._hash = hash(key)
            self._free = _union(lhs._free, rhs._free)
            self._kvars = _union(lhs._kvars, rhs._kvars)
            self._quant = lhs._quant or rhs._quant
            _INTERN[key] = self
        else:
            global _INTERN_HITS
            _INTERN_HITS += 1
        return self

    def __reduce__(self):
        return (BinOp, (self.op, self.lhs, self.rhs))

    def __repr__(self) -> str:
        return f"BinOp({self.op!r}, {self.lhs!r}, {self.rhs!r})"

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


class UnaryOp(Expr):
    __slots__ = ("op", "operand")

    def __new__(cls, op: str, operand: Expr) -> "UnaryOp":
        key = ("UnaryOp", op, operand)
        self = _INTERN.get(key)
        if self is None:
            if op not in ("!", "-"):
                raise ValueError(f"unknown unary operator {op!r}")
            global _INTERN_MISSES
            _INTERN_MISSES += 1
            self = object.__new__(cls)
            self.op = op
            self.operand = operand
            self._hash = hash(key)
            self._free = operand._free
            self._kvars = operand._kvars
            self._quant = operand._quant
            _INTERN[key] = self
        else:
            global _INTERN_HITS
            _INTERN_HITS += 1
        return self

    def __reduce__(self):
        return (UnaryOp, (self.op, self.operand))

    def __repr__(self) -> str:
        return f"UnaryOp({self.op!r}, {self.operand!r})"

    def __str__(self) -> str:
        return f"{self.op}{self.operand}"


class Ite(Expr):
    """If-then-else term: ``cond ? then : otherwise``."""

    __slots__ = ("cond", "then", "otherwise")

    def __new__(cls, cond: Expr, then: Expr, otherwise: Expr) -> "Ite":
        key = ("Ite", cond, then, otherwise)
        self = _INTERN.get(key)
        if self is None:
            global _INTERN_MISSES
            _INTERN_MISSES += 1
            self = object.__new__(cls)
            self.cond = cond
            self.then = then
            self.otherwise = otherwise
            self._hash = hash(key)
            self._free = _union(_union(cond._free, then._free), otherwise._free)
            self._kvars = _union(_union(cond._kvars, then._kvars), otherwise._kvars)
            self._quant = cond._quant or then._quant or otherwise._quant
            _INTERN[key] = self
        else:
            global _INTERN_HITS
            _INTERN_HITS += 1
        return self

    def __reduce__(self):
        return (Ite, (self.cond, self.then, self.otherwise))

    def __repr__(self) -> str:
        return f"Ite({self.cond!r}, {self.then!r}, {self.otherwise!r})"

    def __str__(self) -> str:
        return f"(if {self.cond} then {self.then} else {self.otherwise})"


class App(Expr):
    """Application of an uninterpreted function symbol."""

    __slots__ = ("func", "args", "sort")

    def __new__(cls, func: str, args: Tuple[Expr, ...], sort: Sort = INT) -> "App":
        args = tuple(args)
        key = ("App", func, args, sort)
        self = _INTERN.get(key)
        if self is None:
            global _INTERN_MISSES
            _INTERN_MISSES += 1
            self = object.__new__(cls)
            self.func = func
            self.args = args
            self.sort = sort
            free = _EMPTY
            kvars = _EMPTY
            quant = False
            for arg in args:
                free = _union(free, arg._free)
                kvars = _union(kvars, arg._kvars)
                quant = quant or arg._quant
            self._hash = hash(key)
            self._free = free
            self._kvars = kvars
            self._quant = quant
            _INTERN[key] = self
        else:
            global _INTERN_HITS
            _INTERN_HITS += 1
        return self

    def __reduce__(self):
        return (App, (self.func, self.args, self.sort))

    def __repr__(self) -> str:
        return f"App({self.func!r}, {self.args!r}, {self.sort!r})"

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.func}({inner})"


class KVar(Expr):
    """An unknown Horn predicate ``κ(args)`` solved by liquid inference."""

    __slots__ = ("name", "args")

    def __new__(cls, name: str, args: Tuple[Expr, ...]) -> "KVar":
        args = tuple(args)
        key = ("KVar", name, args)
        self = _INTERN.get(key)
        if self is None:
            global _INTERN_MISSES
            _INTERN_MISSES += 1
            self = object.__new__(cls)
            self.name = name
            self.args = args
            free = _EMPTY
            kvars = frozenset((name,))
            quant = False
            for arg in args:
                free = _union(free, arg._free)
                kvars = _union(kvars, arg._kvars)
                quant = quant or arg._quant
            self._hash = hash(key)
            self._free = free
            self._kvars = kvars
            self._quant = quant
            _INTERN[key] = self
        else:
            global _INTERN_HITS
            _INTERN_HITS += 1
        return self

    def __reduce__(self):
        return (KVar, (self.name, self.args))

    def __repr__(self) -> str:
        return f"KVar({self.name!r}, {self.args!r})"

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"${self.name}({inner})"


class Forall(Expr):
    """Universally quantified predicate (Prusti-style baseline only)."""

    __slots__ = ("binders", "body")

    def __new__(cls, binders: Tuple[Tuple[str, Sort], ...], body: Expr) -> "Forall":
        binders = tuple(binders)
        key = ("Forall", binders, body)
        self = _INTERN.get(key)
        if self is None:
            global _INTERN_MISSES
            _INTERN_MISSES += 1
            self = object.__new__(cls)
            self.binders = binders
            self.body = body
            bound = frozenset(name for name, _ in binders)
            self._hash = hash(key)
            self._free = body._free - bound
            self._kvars = body._kvars
            self._quant = True
            _INTERN[key] = self
        else:
            global _INTERN_HITS
            _INTERN_HITS += 1
        return self

    def __reduce__(self):
        return (Forall, (self.binders, self.body))

    def __repr__(self) -> str:
        return f"Forall({self.binders!r}, {self.body!r})"

    def __str__(self) -> str:
        names = ", ".join(f"{n}: {s}" for n, s in self.binders)
        return f"(forall {names}. {self.body})"


# ---------------------------------------------------------------------------
# Smart constructors.  They perform only *local*, obviously-sound folding so
# that constraint dumps stay readable; real simplification lives in
# repro.logic.simplify.
# ---------------------------------------------------------------------------


def _as_expr(value: Union[Expr, int, bool]) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return BoolConst(value)
    if isinstance(value, int):
        return IntConst(value)
    raise TypeError(f"cannot coerce {value!r} to a refinement expression")


def binop(op: str, lhs: Union[Expr, int, bool], rhs: Union[Expr, int, bool]) -> Expr:
    """Interning constructor for a binary operation (no folding)."""
    return BinOp(op, _as_expr(lhs), _as_expr(rhs))


def unary(op: str, operand: Union[Expr, int, bool]) -> Expr:
    """Interning constructor for a unary operation (no folding)."""
    return UnaryOp(op, _as_expr(operand))


def and_(*exprs: Union[Expr, int, bool]) -> Expr:
    """Conjunction, flattening ``true`` and short-circuiting ``false``."""
    conjuncts = []
    for raw in exprs:
        e = _as_expr(raw)
        if e is TRUE:
            continue
        if e is FALSE:
            return FALSE
        conjuncts.append(e)
    if not conjuncts:
        return TRUE
    result = conjuncts[0]
    for e in conjuncts[1:]:
        result = BinOp("&&", result, e)
    return result


def or_(*exprs: Union[Expr, int, bool]) -> Expr:
    """Disjunction, flattening ``false`` and short-circuiting ``true``."""
    disjuncts = []
    for raw in exprs:
        e = _as_expr(raw)
        if e is FALSE:
            continue
        if e is TRUE:
            return TRUE
        disjuncts.append(e)
    if not disjuncts:
        return FALSE
    result = disjuncts[0]
    for e in disjuncts[1:]:
        result = BinOp("||", result, e)
    return result


def not_(expr: Union[Expr, int, bool]) -> Expr:
    e = _as_expr(expr)
    if e is TRUE:
        return FALSE
    if e is FALSE:
        return TRUE
    if isinstance(e, UnaryOp) and e.op == "!":
        return e.operand
    return UnaryOp("!", e)


def implies(antecedent: Union[Expr, int, bool], consequent: Union[Expr, int, bool]) -> Expr:
    p = _as_expr(antecedent)
    q = _as_expr(consequent)
    if p is TRUE:
        return q
    if p is FALSE or q is TRUE:
        return TRUE
    return BinOp("=>", p, q)


def iff(lhs: Union[Expr, int, bool], rhs: Union[Expr, int, bool]) -> Expr:
    return BinOp("<=>", _as_expr(lhs), _as_expr(rhs))


def eq(lhs: Union[Expr, int, bool], rhs: Union[Expr, int, bool]) -> Expr:
    return BinOp("=", _as_expr(lhs), _as_expr(rhs))


def ne(lhs: Union[Expr, int, bool], rhs: Union[Expr, int, bool]) -> Expr:
    return BinOp("!=", _as_expr(lhs), _as_expr(rhs))


def lt(lhs: Union[Expr, int, bool], rhs: Union[Expr, int, bool]) -> Expr:
    return BinOp("<", _as_expr(lhs), _as_expr(rhs))


def le(lhs: Union[Expr, int, bool], rhs: Union[Expr, int, bool]) -> Expr:
    return BinOp("<=", _as_expr(lhs), _as_expr(rhs))


def gt(lhs: Union[Expr, int, bool], rhs: Union[Expr, int, bool]) -> Expr:
    return BinOp(">", _as_expr(lhs), _as_expr(rhs))


def ge(lhs: Union[Expr, int, bool], rhs: Union[Expr, int, bool]) -> Expr:
    return BinOp(">=", _as_expr(lhs), _as_expr(rhs))


_ZERO = IntConst(0)
_ONE = IntConst(1)


def add(lhs: Union[Expr, int], rhs: Union[Expr, int]) -> Expr:
    left, right = _as_expr(lhs), _as_expr(rhs)
    if isinstance(right, IntConst):
        if isinstance(left, IntConst):
            return IntConst(left.value + right.value)
        if right.value == 0:
            return left
    if isinstance(left, IntConst) and left.value == 0:
        return right
    return BinOp("+", left, right)


def sub(lhs: Union[Expr, int], rhs: Union[Expr, int]) -> Expr:
    left, right = _as_expr(lhs), _as_expr(rhs)
    if isinstance(right, IntConst):
        if isinstance(left, IntConst):
            return IntConst(left.value - right.value)
        if right.value == 0:
            return left
    return BinOp("-", left, right)


def mul(lhs: Union[Expr, int], rhs: Union[Expr, int]) -> Expr:
    left, right = _as_expr(lhs), _as_expr(rhs)
    if isinstance(left, IntConst):
        if isinstance(right, IntConst):
            return IntConst(left.value * right.value)
        if left.value == 1:
            return right
    if isinstance(right, IntConst) and right.value == 1:
        return left
    return BinOp("*", left, right)


def neg(operand: Union[Expr, int]) -> Expr:
    e = _as_expr(operand)
    if isinstance(e, IntConst):
        return IntConst(-e.value)
    return UnaryOp("-", e)


def conjuncts_of(expr: Expr) -> Iterable[Expr]:
    """Yield the top-level conjuncts of ``expr`` (flattening nested ``&&``)."""
    stack = [expr]
    while stack:
        e = stack.pop()
        if isinstance(e, BinOp) and e.op == "&&":
            stack.append(e.rhs)
            stack.append(e.lhs)
        else:
            yield e


def sort_of(expr: Expr) -> Sort:
    """Best-effort sort of an expression (used for sort checking)."""
    if isinstance(expr, Var):
        return expr.sort
    if isinstance(expr, IntConst):
        return INT
    if isinstance(expr, RealConst):
        return REAL
    if isinstance(expr, BoolConst):
        return BOOL
    if isinstance(expr, App):
        return expr.sort
    if isinstance(expr, KVar):
        return BOOL
    if isinstance(expr, Forall):
        return BOOL
    if isinstance(expr, UnaryOp):
        return BOOL if expr.op == "!" else sort_of(expr.operand)
    if isinstance(expr, Ite):
        return sort_of(expr.then)
    if isinstance(expr, BinOp):
        if expr.op in CMP_OPS or expr.op in BOOL_OPS:
            return BOOL
        return sort_of(expr.lhs)
    raise TypeError(f"unknown expression {expr!r}")
