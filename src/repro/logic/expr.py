"""Expression AST for the refinement logic.

Expressions are immutable and hashable so they can be shared freely between
refinement types, Horn constraints and SMT queries.  The grammar mirrors the
``r`` production of Fig. 6 in the paper:

* variables, integer / boolean constants,
* equality, boolean connectives, linear integer arithmetic,
* plus three extensions used by the implementation:
  - ``Ite`` (if-then-else) terms, produced when joining indexed types,
  - ``KVar`` applications, the unknown Horn predicates of liquid inference,
  - ``Forall`` and uninterpreted ``App`` nodes, used only by the Prusti-style
    baseline for quantified container specifications.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Tuple, Union

from repro.logic.sorts import BOOL, INT, REAL, Sort


class Expr:
    """Base class of all refinement expressions."""

    __slots__ = ()

    def __and__(self, other: "Expr") -> "Expr":
        return and_(self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return or_(self, other)

    def __invert__(self) -> "Expr":
        return not_(self)


@dataclass(frozen=True)
class Var(Expr):
    """A refinement variable with its sort."""

    name: str
    sort: Sort = INT

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class IntConst(Expr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class RealConst(Expr):
    value: Fraction

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class BoolConst(Expr):
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


TRUE = BoolConst(True)
FALSE = BoolConst(False)


#: Binary operators recognised by the logic.  Comparison and boolean
#: operators produce ``bool``-sorted terms; the arithmetic ones are
#: ``int``-sorted (``real`` when applied to real operands).
ARITH_OPS = frozenset({"+", "-", "*", "/", "%"})
CMP_OPS = frozenset({"=", "!=", "<", "<=", ">", ">="})
BOOL_OPS = frozenset({"&&", "||", "=>", "<=>"})
ALL_OPS = ARITH_OPS | CMP_OPS | BOOL_OPS


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in ALL_OPS:
            raise ValueError(f"unknown binary operator {self.op!r}")

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # "!" or "-"
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in ("!", "-"):
            raise ValueError(f"unknown unary operator {self.op!r}")

    def __str__(self) -> str:
        return f"{self.op}{self.operand}"


@dataclass(frozen=True)
class Ite(Expr):
    """If-then-else term: ``cond ? then : otherwise``."""

    cond: Expr
    then: Expr
    otherwise: Expr

    def __str__(self) -> str:
        return f"(if {self.cond} then {self.then} else {self.otherwise})"


@dataclass(frozen=True)
class App(Expr):
    """Application of an uninterpreted function symbol."""

    func: str
    args: Tuple[Expr, ...]
    sort: Sort = INT

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.func}({inner})"


@dataclass(frozen=True)
class KVar(Expr):
    """An unknown Horn predicate ``κ(args)`` solved by liquid inference."""

    name: str
    args: Tuple[Expr, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"${self.name}({inner})"


@dataclass(frozen=True)
class Forall(Expr):
    """Universally quantified predicate (Prusti-style baseline only)."""

    binders: Tuple[Tuple[str, Sort], ...]
    body: Expr

    def __str__(self) -> str:
        names = ", ".join(f"{n}: {s}" for n, s in self.binders)
        return f"(forall {names}. {self.body})"


# ---------------------------------------------------------------------------
# Smart constructors.  They perform only *local*, obviously-sound folding so
# that constraint dumps stay readable; real simplification lives in
# repro.logic.simplify.
# ---------------------------------------------------------------------------


def _as_expr(value: Union[Expr, int, bool]) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return BoolConst(value)
    if isinstance(value, int):
        return IntConst(value)
    raise TypeError(f"cannot coerce {value!r} to a refinement expression")


def and_(*exprs: Union[Expr, int, bool]) -> Expr:
    """Conjunction, flattening ``true`` and short-circuiting ``false``."""
    conjuncts = []
    for raw in exprs:
        e = _as_expr(raw)
        if e == TRUE:
            continue
        if e == FALSE:
            return FALSE
        conjuncts.append(e)
    if not conjuncts:
        return TRUE
    result = conjuncts[0]
    for e in conjuncts[1:]:
        result = BinOp("&&", result, e)
    return result


def or_(*exprs: Union[Expr, int, bool]) -> Expr:
    """Disjunction, flattening ``false`` and short-circuiting ``true``."""
    disjuncts = []
    for raw in exprs:
        e = _as_expr(raw)
        if e == FALSE:
            continue
        if e == TRUE:
            return TRUE
        disjuncts.append(e)
    if not disjuncts:
        return FALSE
    result = disjuncts[0]
    for e in disjuncts[1:]:
        result = BinOp("||", result, e)
    return result


def not_(expr: Union[Expr, int, bool]) -> Expr:
    e = _as_expr(expr)
    if e == TRUE:
        return FALSE
    if e == FALSE:
        return TRUE
    if isinstance(e, UnaryOp) and e.op == "!":
        return e.operand
    return UnaryOp("!", e)


def implies(antecedent: Union[Expr, int, bool], consequent: Union[Expr, int, bool]) -> Expr:
    p = _as_expr(antecedent)
    q = _as_expr(consequent)
    if p == TRUE:
        return q
    if p == FALSE or q == TRUE:
        return TRUE
    return BinOp("=>", p, q)


def iff(lhs: Union[Expr, int, bool], rhs: Union[Expr, int, bool]) -> Expr:
    return BinOp("<=>", _as_expr(lhs), _as_expr(rhs))


def eq(lhs: Union[Expr, int, bool], rhs: Union[Expr, int, bool]) -> Expr:
    return BinOp("=", _as_expr(lhs), _as_expr(rhs))


def ne(lhs: Union[Expr, int, bool], rhs: Union[Expr, int, bool]) -> Expr:
    return BinOp("!=", _as_expr(lhs), _as_expr(rhs))


def lt(lhs: Union[Expr, int, bool], rhs: Union[Expr, int, bool]) -> Expr:
    return BinOp("<", _as_expr(lhs), _as_expr(rhs))


def le(lhs: Union[Expr, int, bool], rhs: Union[Expr, int, bool]) -> Expr:
    return BinOp("<=", _as_expr(lhs), _as_expr(rhs))


def gt(lhs: Union[Expr, int, bool], rhs: Union[Expr, int, bool]) -> Expr:
    return BinOp(">", _as_expr(lhs), _as_expr(rhs))


def ge(lhs: Union[Expr, int, bool], rhs: Union[Expr, int, bool]) -> Expr:
    return BinOp(">=", _as_expr(lhs), _as_expr(rhs))


def add(lhs: Union[Expr, int], rhs: Union[Expr, int]) -> Expr:
    left, right = _as_expr(lhs), _as_expr(rhs)
    if isinstance(left, IntConst) and isinstance(right, IntConst):
        return IntConst(left.value + right.value)
    if right == IntConst(0):
        return left
    if left == IntConst(0):
        return right
    return BinOp("+", left, right)


def sub(lhs: Union[Expr, int], rhs: Union[Expr, int]) -> Expr:
    left, right = _as_expr(lhs), _as_expr(rhs)
    if isinstance(left, IntConst) and isinstance(right, IntConst):
        return IntConst(left.value - right.value)
    if right == IntConst(0):
        return left
    return BinOp("-", left, right)


def mul(lhs: Union[Expr, int], rhs: Union[Expr, int]) -> Expr:
    left, right = _as_expr(lhs), _as_expr(rhs)
    if isinstance(left, IntConst) and isinstance(right, IntConst):
        return IntConst(left.value * right.value)
    if left == IntConst(1):
        return right
    if right == IntConst(1):
        return left
    return BinOp("*", left, right)


def neg(operand: Union[Expr, int]) -> Expr:
    e = _as_expr(operand)
    if isinstance(e, IntConst):
        return IntConst(-e.value)
    return UnaryOp("-", e)


def conjuncts_of(expr: Expr) -> Iterable[Expr]:
    """Yield the top-level conjuncts of ``expr`` (flattening nested ``&&``)."""
    stack = [expr]
    while stack:
        e = stack.pop()
        if isinstance(e, BinOp) and e.op == "&&":
            stack.append(e.rhs)
            stack.append(e.lhs)
        else:
            yield e


def sort_of(expr: Expr) -> Sort:
    """Best-effort sort of an expression (used for sort checking)."""
    if isinstance(expr, Var):
        return expr.sort
    if isinstance(expr, IntConst):
        return INT
    if isinstance(expr, RealConst):
        return REAL
    if isinstance(expr, BoolConst):
        return BOOL
    if isinstance(expr, App):
        return expr.sort
    if isinstance(expr, KVar):
        return BOOL
    if isinstance(expr, Forall):
        return BOOL
    if isinstance(expr, UnaryOp):
        return BOOL if expr.op == "!" else sort_of(expr.operand)
    if isinstance(expr, Ite):
        return sort_of(expr.then)
    if isinstance(expr, BinOp):
        if expr.op in CMP_OPS or expr.op in BOOL_OPS:
            return BOOL
        return sort_of(expr.lhs)
    raise TypeError(f"unknown expression {expr!r}")
