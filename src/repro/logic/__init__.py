"""Refinement logic: sorts, expressions, substitution and simplification.

This package implements the quantifier-free first-order language used by
refinement types (the ``r`` grammar of the paper, Fig. 6) plus the small
extensions needed by the Prusti-style baseline (universal quantifiers and
uninterpreted functions for sequence reasoning).
"""

from repro.logic.sorts import Sort, INT, BOOL, LOC, REAL, FuncSort
from repro.logic.expr import (
    Expr,
    Var,
    IntConst,
    BoolConst,
    RealConst,
    BinOp,
    UnaryOp,
    Ite,
    App,
    KVar,
    Forall,
    and_,
    or_,
    not_,
    implies,
    iff,
    eq,
    ne,
    lt,
    le,
    gt,
    ge,
    add,
    sub,
    mul,
    neg,
    TRUE,
    FALSE,
)
from repro.logic.subst import substitute, free_vars, kvars_of, rename
from repro.logic.simplify import simplify
from repro.logic.pretty import pretty

__all__ = [
    "Sort",
    "INT",
    "BOOL",
    "LOC",
    "REAL",
    "FuncSort",
    "Expr",
    "Var",
    "IntConst",
    "BoolConst",
    "RealConst",
    "BinOp",
    "UnaryOp",
    "Ite",
    "App",
    "KVar",
    "Forall",
    "and_",
    "or_",
    "not_",
    "implies",
    "iff",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "add",
    "sub",
    "mul",
    "neg",
    "TRUE",
    "FALSE",
    "substitute",
    "free_vars",
    "kvars_of",
    "rename",
    "simplify",
    "pretty",
]
