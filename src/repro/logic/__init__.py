"""Refinement logic: sorts, expressions, substitution and simplification.

This package implements the quantifier-free first-order language used by
refinement types (the ``r`` grammar of the paper, Fig. 6) plus the small
extensions needed by the Prusti-style baseline (universal quantifiers and
uninterpreted functions for sequence reasoning).
"""

from repro.logic.sorts import Sort, INT, BOOL, LOC, REAL, FuncSort
from repro.logic.expr import (
    Expr,
    Var,
    IntConst,
    BoolConst,
    RealConst,
    BinOp,
    UnaryOp,
    Ite,
    App,
    KVar,
    Forall,
    binop,
    unary,
    intern_stats,
    clear_intern_table,
    and_,
    or_,
    not_,
    implies,
    iff,
    eq,
    ne,
    lt,
    le,
    gt,
    ge,
    add,
    sub,
    mul,
    neg,
    TRUE,
    FALSE,
)
from repro.logic.subst import (
    substitute,
    free_vars,
    kvars_of,
    rename,
    subst_cache_stats,
    clear_subst_cache,
)
from repro.logic.simplify import simplify, simplify_cache_stats, clear_simplify_cache
from repro.logic.pretty import pretty


def term_cache_stats() -> dict:
    """Aggregate observability for the interning layer and its memo caches."""
    stats = {}
    stats.update(intern_stats())
    stats.update(subst_cache_stats())
    stats.update(simplify_cache_stats())
    return stats


def clear_term_caches() -> None:
    """Reset the intern table and every memo cache that keys on its nodes."""
    clear_subst_cache()
    clear_simplify_cache()
    clear_intern_table()

__all__ = [
    "Sort",
    "INT",
    "BOOL",
    "LOC",
    "REAL",
    "FuncSort",
    "Expr",
    "Var",
    "IntConst",
    "BoolConst",
    "RealConst",
    "BinOp",
    "UnaryOp",
    "Ite",
    "App",
    "KVar",
    "Forall",
    "and_",
    "or_",
    "not_",
    "implies",
    "iff",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "add",
    "sub",
    "mul",
    "neg",
    "TRUE",
    "FALSE",
    "binop",
    "unary",
    "substitute",
    "free_vars",
    "kvars_of",
    "rename",
    "simplify",
    "pretty",
    "intern_stats",
    "term_cache_stats",
    "clear_term_caches",
]
