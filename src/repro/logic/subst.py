"""Substitution, renaming and variable queries over refinement expressions.

All three queries are O(1) on interned expressions: ``free_vars`` and
``kvars_of`` read the sets cached on the node at construction time, and
``substitute`` is a memoised traversal that short-circuits every subtree
whose cached free variables are disjoint from the substitution domain.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping

from repro.logic.expr import (
    App,
    BinOp,
    Expr,
    Forall,
    Ite,
    KVar,
    UnaryOp,
    Var,
)

#: Global memo of completed substitutions, keyed on the interned expression
#: plus the (restricted, sorted) mapping items.  Hashing the key is O(size of
#: the mapping): every participating expression carries a precomputed hash.
_SUBST_CACHE: Dict[tuple, Expr] = {}
_SUBST_CACHE_LIMIT = 250_000
_SUBST_HITS = 0
_SUBST_MISSES = 0


def subst_cache_stats() -> Dict[str, int]:
    return {
        "subst_cache_size": len(_SUBST_CACHE),
        "subst_cache_hits": _SUBST_HITS,
        "subst_cache_misses": _SUBST_MISSES,
    }


def clear_subst_cache() -> None:
    global _SUBST_HITS, _SUBST_MISSES
    _SUBST_CACHE.clear()
    _SUBST_HITS = 0
    _SUBST_MISSES = 0


def substitute(expr: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Capture-avoiding substitution of variables by expressions.

    ``mapping`` maps variable *names* to replacement expressions.  Quantified
    binders shadow the substitution for their body, which is sufficient here
    because the checker always generates fresh binder names.
    """
    if not mapping:
        return expr
    free = expr._free
    # Restrict the mapping to the variables that actually occur; most
    # substitutions touch a handful of a large context's binders.
    items = tuple(
        sorted(
            ((name, value) for name, value in mapping.items() if name in free),
            key=_by_name,
        )
    )
    if not items:
        return expr
    global _SUBST_HITS, _SUBST_MISSES
    key = (expr, items)
    cached = _SUBST_CACHE.get(key)
    if cached is not None:
        _SUBST_HITS += 1
        return cached
    _SUBST_MISSES += 1
    domain = frozenset(name for name, _ in items)
    result = _subst(expr, dict(items), domain)
    if len(_SUBST_CACHE) >= _SUBST_CACHE_LIMIT:
        _SUBST_CACHE.clear()
    _SUBST_CACHE[key] = result
    return result


def _by_name(item):
    return item[0]


def _subst(expr: Expr, mapping: Dict[str, Expr], domain: FrozenSet[str]) -> Expr:
    if domain.isdisjoint(expr._free):
        return expr
    if isinstance(expr, Var):
        return mapping.get(expr.name, expr)
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op, _subst(expr.lhs, mapping, domain), _subst(expr.rhs, mapping, domain)
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _subst(expr.operand, mapping, domain))
    if isinstance(expr, Ite):
        return Ite(
            _subst(expr.cond, mapping, domain),
            _subst(expr.then, mapping, domain),
            _subst(expr.otherwise, mapping, domain),
        )
    if isinstance(expr, App):
        return App(
            expr.func, tuple(_subst(a, mapping, domain) for a in expr.args), expr.sort
        )
    if isinstance(expr, KVar):
        return KVar(expr.name, tuple(_subst(a, mapping, domain) for a in expr.args))
    if isinstance(expr, Forall):
        bound = {name for name, _ in expr.binders}
        inner = {k: v for k, v in mapping.items() if k not in bound}
        if not inner:
            return expr
        return Forall(expr.binders, _subst(expr.body, inner, frozenset(inner)))
    raise TypeError(f"cannot substitute in {expr!r}")


def rename(expr: Expr, mapping: Mapping[str, str]) -> Expr:
    """Rename variables (name-to-name substitution preserving sorts)."""
    return substitute(expr, {old: Var(new) for old, new in mapping.items()})


def free_vars(expr: Expr) -> FrozenSet[str]:
    """Names of the free variables of ``expr`` (cached on the node)."""
    return expr._free


def free_var_sorts(expr: Expr) -> Dict[str, "Sort"]:
    """Sorts recorded on the free-variable *occurrences* of ``expr``.

    Callers that received no explicit sort environment (e.g. the
    Prusti-style baseline handing raw obligations to ``is_valid``) rely on
    this to recover that a fresh symbol was minted bool-sorted; defaulting
    every free variable to ``int`` mis-sorts those and makes the solver
    reject the query.  The first occurrence of a name wins, which matches
    how the expression was built (one ``Var`` per fresh symbol).
    """
    sorts: Dict[str, "Sort"] = {}
    _collect_var_sorts(expr, frozenset(), sorts, set())
    return sorts


def _collect_var_sorts(
    expr: Expr,
    bound: FrozenSet[str],
    sorts: Dict[str, "Sort"],
    seen: set,
) -> None:
    free = expr._free
    if not free or (bound and free <= bound):
        return
    # Interned expressions are DAGs with heavy subterm sharing; without the
    # visited set a shared subtree would be walked once per occurrence
    # (exponentially, in the worst case).  The key includes the bound set:
    # the same node can sit both under a binder and outside it.
    key = (id(expr), bound)
    if key in seen:
        return
    seen.add(key)
    if isinstance(expr, Var):
        if expr.name not in bound:
            sorts.setdefault(expr.name, expr.sort)
        return
    if isinstance(expr, BinOp):
        _collect_var_sorts(expr.lhs, bound, sorts, seen)
        _collect_var_sorts(expr.rhs, bound, sorts, seen)
        return
    if isinstance(expr, UnaryOp):
        _collect_var_sorts(expr.operand, bound, sorts, seen)
        return
    if isinstance(expr, Ite):
        _collect_var_sorts(expr.cond, bound, sorts, seen)
        _collect_var_sorts(expr.then, bound, sorts, seen)
        _collect_var_sorts(expr.otherwise, bound, sorts, seen)
        return
    if isinstance(expr, (App, KVar)):
        for arg in expr.args:
            _collect_var_sorts(arg, bound, sorts, seen)
        return
    if isinstance(expr, Forall):
        _collect_var_sorts(
            expr.body, bound | {name for name, _ in expr.binders}, sorts, seen
        )
        return


def kvars_of(expr: Expr) -> FrozenSet[str]:
    """Names of the κ (Horn) variables occurring in ``expr`` (cached)."""
    return expr._kvars
