"""Substitution, renaming and variable queries over refinement expressions."""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Set

from repro.logic.expr import (
    App,
    BinOp,
    BoolConst,
    Expr,
    Forall,
    IntConst,
    Ite,
    KVar,
    RealConst,
    UnaryOp,
    Var,
)


def substitute(expr: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Capture-avoiding substitution of variables by expressions.

    ``mapping`` maps variable *names* to replacement expressions.  Quantified
    binders shadow the substitution for their body, which is sufficient here
    because the checker always generates fresh binder names.
    """
    if not mapping:
        return expr
    return _subst(expr, dict(mapping))


def _subst(expr: Expr, mapping: Dict[str, Expr]) -> Expr:
    if isinstance(expr, Var):
        return mapping.get(expr.name, expr)
    if isinstance(expr, (IntConst, BoolConst, RealConst)):
        return expr
    if isinstance(expr, BinOp):
        return BinOp(expr.op, _subst(expr.lhs, mapping), _subst(expr.rhs, mapping))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _subst(expr.operand, mapping))
    if isinstance(expr, Ite):
        return Ite(
            _subst(expr.cond, mapping),
            _subst(expr.then, mapping),
            _subst(expr.otherwise, mapping),
        )
    if isinstance(expr, App):
        return App(expr.func, tuple(_subst(a, mapping) for a in expr.args), expr.sort)
    if isinstance(expr, KVar):
        return KVar(expr.name, tuple(_subst(a, mapping) for a in expr.args))
    if isinstance(expr, Forall):
        bound = {name for name, _ in expr.binders}
        inner = {k: v for k, v in mapping.items() if k not in bound}
        if not inner:
            return expr
        return Forall(expr.binders, _subst(expr.body, inner))
    raise TypeError(f"cannot substitute in {expr!r}")


def rename(expr: Expr, mapping: Mapping[str, str]) -> Expr:
    """Rename variables (name-to-name substitution preserving sorts)."""
    return substitute(expr, {old: Var(new) for old, new in mapping.items()})


def free_vars(expr: Expr) -> FrozenSet[str]:
    """Names of the free variables of ``expr``."""
    acc: Set[str] = set()
    _collect_free(expr, frozenset(), acc)
    return frozenset(acc)


def _collect_free(expr: Expr, bound: FrozenSet[str], acc: Set[str]) -> None:
    if isinstance(expr, Var):
        if expr.name not in bound:
            acc.add(expr.name)
    elif isinstance(expr, (IntConst, BoolConst, RealConst)):
        return
    elif isinstance(expr, BinOp):
        _collect_free(expr.lhs, bound, acc)
        _collect_free(expr.rhs, bound, acc)
    elif isinstance(expr, UnaryOp):
        _collect_free(expr.operand, bound, acc)
    elif isinstance(expr, Ite):
        _collect_free(expr.cond, bound, acc)
        _collect_free(expr.then, bound, acc)
        _collect_free(expr.otherwise, bound, acc)
    elif isinstance(expr, (App, KVar)):
        for arg in expr.args:
            _collect_free(arg, bound, acc)
    elif isinstance(expr, Forall):
        inner_bound = bound | {name for name, _ in expr.binders}
        _collect_free(expr.body, inner_bound, acc)
    else:
        raise TypeError(f"cannot collect free variables of {expr!r}")


def kvars_of(expr: Expr) -> FrozenSet[str]:
    """Names of the κ (Horn) variables occurring in ``expr``."""
    acc: Set[str] = set()
    _collect_kvars(expr, acc)
    return frozenset(acc)


def _collect_kvars(expr: Expr, acc: Set[str]) -> None:
    if isinstance(expr, KVar):
        acc.add(expr.name)
        for arg in expr.args:
            _collect_kvars(arg, acc)
    elif isinstance(expr, BinOp):
        _collect_kvars(expr.lhs, acc)
        _collect_kvars(expr.rhs, acc)
    elif isinstance(expr, UnaryOp):
        _collect_kvars(expr.operand, acc)
    elif isinstance(expr, Ite):
        _collect_kvars(expr.cond, acc)
        _collect_kvars(expr.then, acc)
        _collect_kvars(expr.otherwise, acc)
    elif isinstance(expr, App):
        for arg in expr.args:
            _collect_kvars(arg, acc)
    elif isinstance(expr, Forall):
        _collect_kvars(expr.body, acc)
