"""Constant folding and local simplification of refinement expressions.

The checker produces many trivially-true side conditions (e.g. ``0 <= 0``);
folding them before they reach the SMT layer keeps both constraint dumps and
solver inputs small.  The rewrites are purely local and syntactic, hence
obviously validity-preserving.

``simplify`` is a pure function of an interned expression, so its results
are memoised globally: re-simplifying the hypotheses of a clause on every
fixpoint visit costs one dictionary lookup.
"""

from __future__ import annotations

from typing import Dict

from repro.logic.expr import (
    ARITH_OPS,
    App,
    BinOp,
    BoolConst,
    Expr,
    FALSE,
    Forall,
    IntConst,
    Ite,
    KVar,
    RealConst,
    TRUE,
    UnaryOp,
    Var,
)

_SIMPLIFY_CACHE: Dict[Expr, Expr] = {}
_SIMPLIFY_CACHE_LIMIT = 250_000
_SIMPLIFY_HITS = 0
_SIMPLIFY_MISSES = 0


def simplify_cache_stats() -> Dict[str, int]:
    return {
        "simplify_cache_size": len(_SIMPLIFY_CACHE),
        "simplify_cache_hits": _SIMPLIFY_HITS,
        "simplify_cache_misses": _SIMPLIFY_MISSES,
    }


def clear_simplify_cache() -> None:
    global _SIMPLIFY_HITS, _SIMPLIFY_MISSES
    _SIMPLIFY_CACHE.clear()
    _SIMPLIFY_HITS = 0
    _SIMPLIFY_MISSES = 0


def simplify(expr: Expr) -> Expr:
    """Return a simplified expression equivalent to ``expr``."""
    if isinstance(expr, (Var, IntConst, BoolConst, RealConst)):
        return expr
    global _SIMPLIFY_HITS, _SIMPLIFY_MISSES
    cached = _SIMPLIFY_CACHE.get(expr)
    if cached is not None:
        _SIMPLIFY_HITS += 1
        return cached
    _SIMPLIFY_MISSES += 1
    result = _simplify(expr)
    if len(_SIMPLIFY_CACHE) >= _SIMPLIFY_CACHE_LIMIT:
        _SIMPLIFY_CACHE.clear()
    _SIMPLIFY_CACHE[expr] = result
    if result is not expr:
        # Simplification is idempotent; pin the fixed point too.
        _SIMPLIFY_CACHE.setdefault(result, result)
    return result


def _simplify(expr: Expr) -> Expr:
    if isinstance(expr, UnaryOp):
        return _simplify_unary(expr)
    if isinstance(expr, BinOp):
        return _simplify_binop(expr)
    if isinstance(expr, Ite):
        cond = simplify(expr.cond)
        if cond is TRUE:
            return simplify(expr.then)
        if cond is FALSE:
            return simplify(expr.otherwise)
        return Ite(cond, simplify(expr.then), simplify(expr.otherwise))
    if isinstance(expr, App):
        return App(expr.func, tuple(simplify(a) for a in expr.args), expr.sort)
    if isinstance(expr, KVar):
        return KVar(expr.name, tuple(simplify(a) for a in expr.args))
    if isinstance(expr, Forall):
        body = simplify(expr.body)
        if body is TRUE or body is FALSE:
            return body
        return Forall(expr.binders, body)
    return expr


def _simplify_unary(expr: UnaryOp) -> Expr:
    operand = simplify(expr.operand)
    if expr.op == "!":
        if operand is TRUE:
            return FALSE
        if operand is FALSE:
            return TRUE
        if isinstance(operand, UnaryOp) and operand.op == "!":
            return operand.operand
        return UnaryOp("!", operand)
    # negation
    if isinstance(operand, IntConst):
        return IntConst(-operand.value)
    return UnaryOp("-", operand)


def _simplify_binop(expr: BinOp) -> Expr:
    lhs = simplify(expr.lhs)
    rhs = simplify(expr.rhs)
    op = expr.op

    if op in ARITH_OPS:
        return _fold_arith(op, lhs, rhs)

    if op == "&&":
        if lhs is FALSE or rhs is FALSE:
            return FALSE
        if lhs is TRUE:
            return rhs
        if rhs is TRUE:
            return lhs
        return BinOp(op, lhs, rhs)
    if op == "||":
        if lhs is TRUE or rhs is TRUE:
            return TRUE
        if lhs is FALSE:
            return rhs
        if rhs is FALSE:
            return lhs
        return BinOp(op, lhs, rhs)
    if op == "=>":
        if lhs is FALSE or rhs is TRUE:
            return TRUE
        if lhs is TRUE:
            return rhs
        return BinOp(op, lhs, rhs)
    if op == "<=>":
        if lhs is rhs:
            return TRUE
        return BinOp(op, lhs, rhs)

    # comparisons
    if isinstance(lhs, IntConst) and isinstance(rhs, IntConst):
        return BoolConst(_compare(op, lhs.value, rhs.value))
    if isinstance(lhs, BoolConst) and isinstance(rhs, BoolConst):
        if op == "=":
            return BoolConst(lhs.value == rhs.value)
        if op == "!=":
            return BoolConst(lhs.value != rhs.value)
    if lhs is rhs and op in ("=", "<=", ">="):
        return TRUE
    if lhs is rhs and op in ("!=", "<", ">"):
        return FALSE
    return BinOp(op, lhs, rhs)


def _fold_arith(op: str, lhs: Expr, rhs: Expr) -> Expr:
    lhs_const = lhs.value if isinstance(lhs, IntConst) else None
    rhs_const = rhs.value if isinstance(rhs, IntConst) else None
    if lhs_const is not None and rhs_const is not None:
        if op == "+":
            return IntConst(lhs_const + rhs_const)
        if op == "-":
            return IntConst(lhs_const - rhs_const)
        if op == "*":
            return IntConst(lhs_const * rhs_const)
        if op == "/" and rhs_const != 0:
            return IntConst(lhs_const // rhs_const)
        if op == "%" and rhs_const != 0:
            return IntConst(lhs_const % rhs_const)
    if op == "+":
        if lhs_const == 0:
            return rhs
        if rhs_const == 0:
            return lhs
    if op == "-" and rhs_const == 0:
        return lhs
    if op == "*":
        if lhs_const == 1:
            return rhs
        if rhs_const == 1:
            return lhs
        if lhs_const == 0 or rhs_const == 0:
            return IntConst(0)
    return BinOp(op, lhs, rhs)


def _compare(op: str, left: int, right: int) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ValueError(f"not a comparison operator: {op!r}")
