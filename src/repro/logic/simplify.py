"""Constant folding and local simplification of refinement expressions.

The checker produces many trivially-true side conditions (e.g. ``0 <= 0``);
folding them before they reach the SMT layer keeps both constraint dumps and
solver inputs small.  The rewrites are purely local and syntactic, hence
obviously validity-preserving.
"""

from __future__ import annotations

from repro.logic.expr import (
    ARITH_OPS,
    App,
    BinOp,
    BoolConst,
    Expr,
    FALSE,
    Forall,
    IntConst,
    Ite,
    KVar,
    RealConst,
    TRUE,
    UnaryOp,
    Var,
)


def simplify(expr: Expr) -> Expr:
    """Return a simplified expression equivalent to ``expr``."""
    if isinstance(expr, (Var, IntConst, BoolConst, RealConst)):
        return expr
    if isinstance(expr, UnaryOp):
        return _simplify_unary(expr)
    if isinstance(expr, BinOp):
        return _simplify_binop(expr)
    if isinstance(expr, Ite):
        cond = simplify(expr.cond)
        if cond == TRUE:
            return simplify(expr.then)
        if cond == FALSE:
            return simplify(expr.otherwise)
        return Ite(cond, simplify(expr.then), simplify(expr.otherwise))
    if isinstance(expr, App):
        return App(expr.func, tuple(simplify(a) for a in expr.args), expr.sort)
    if isinstance(expr, KVar):
        return KVar(expr.name, tuple(simplify(a) for a in expr.args))
    if isinstance(expr, Forall):
        body = simplify(expr.body)
        if body in (TRUE, FALSE):
            return body
        return Forall(expr.binders, body)
    return expr


def _simplify_unary(expr: UnaryOp) -> Expr:
    operand = simplify(expr.operand)
    if expr.op == "!":
        if operand == TRUE:
            return FALSE
        if operand == FALSE:
            return TRUE
        if isinstance(operand, UnaryOp) and operand.op == "!":
            return operand.operand
        return UnaryOp("!", operand)
    # negation
    if isinstance(operand, IntConst):
        return IntConst(-operand.value)
    return UnaryOp("-", operand)


def _simplify_binop(expr: BinOp) -> Expr:
    lhs = simplify(expr.lhs)
    rhs = simplify(expr.rhs)
    op = expr.op

    if op in ARITH_OPS:
        return _fold_arith(op, lhs, rhs)

    if op == "&&":
        if lhs == FALSE or rhs == FALSE:
            return FALSE
        if lhs == TRUE:
            return rhs
        if rhs == TRUE:
            return lhs
        return BinOp(op, lhs, rhs)
    if op == "||":
        if lhs == TRUE or rhs == TRUE:
            return TRUE
        if lhs == FALSE:
            return rhs
        if rhs == FALSE:
            return lhs
        return BinOp(op, lhs, rhs)
    if op == "=>":
        if lhs == FALSE or rhs == TRUE:
            return TRUE
        if lhs == TRUE:
            return rhs
        return BinOp(op, lhs, rhs)
    if op == "<=>":
        if lhs == rhs:
            return TRUE
        return BinOp(op, lhs, rhs)

    # comparisons
    if isinstance(lhs, IntConst) and isinstance(rhs, IntConst):
        return BoolConst(_compare(op, lhs.value, rhs.value))
    if isinstance(lhs, BoolConst) and isinstance(rhs, BoolConst):
        if op == "=":
            return BoolConst(lhs.value == rhs.value)
        if op == "!=":
            return BoolConst(lhs.value != rhs.value)
    if lhs == rhs and op in ("=", "<=", ">="):
        return TRUE
    if lhs == rhs and op in ("!=", "<", ">"):
        return FALSE
    return BinOp(op, lhs, rhs)


def _fold_arith(op: str, lhs: Expr, rhs: Expr) -> Expr:
    if isinstance(lhs, IntConst) and isinstance(rhs, IntConst):
        left, right = lhs.value, rhs.value
        if op == "+":
            return IntConst(left + right)
        if op == "-":
            return IntConst(left - right)
        if op == "*":
            return IntConst(left * right)
        if op == "/" and right != 0:
            return IntConst(left // right)
        if op == "%" and right != 0:
            return IntConst(left % right)
    if op == "+":
        if lhs == IntConst(0):
            return rhs
        if rhs == IntConst(0):
            return lhs
    if op == "-" and rhs == IntConst(0):
        return lhs
    if op == "*":
        if lhs == IntConst(1):
            return rhs
        if rhs == IntConst(1):
            return lhs
        if lhs == IntConst(0) or rhs == IntConst(0):
            return IntConst(0)
    return BinOp(op, lhs, rhs)


def _compare(op: str, left: int, right: int) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ValueError(f"not a comparison operator: {op!r}")
