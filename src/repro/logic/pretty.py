"""Human-readable printing of refinement expressions.

The ``__str__`` methods on expressions fully parenthesise; ``pretty`` drops
redundant parentheses using standard precedence so that error messages and
constraint dumps read like the surface syntax of the paper.
"""

from __future__ import annotations

from repro.logic.expr import (
    App,
    BinOp,
    BoolConst,
    Expr,
    Forall,
    IntConst,
    Ite,
    KVar,
    RealConst,
    UnaryOp,
    Var,
)

_PRECEDENCE = {
    "<=>": 1,
    "=>": 2,
    "||": 3,
    "&&": 4,
    "=": 5,
    "!=": 5,
    "<": 5,
    "<=": 5,
    ">": 5,
    ">=": 5,
    "+": 6,
    "-": 6,
    "*": 7,
    "/": 7,
    "%": 7,
}

_ATOM_PRECEDENCE = 10


def pretty(expr: Expr) -> str:
    """Render ``expr`` with minimal parentheses."""
    return _render(expr, 0)


def _render(expr: Expr, parent_prec: int) -> str:
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, IntConst):
        return str(expr.value)
    if isinstance(expr, RealConst):
        return str(expr.value)
    if isinstance(expr, BoolConst):
        return "true" if expr.value else "false"
    if isinstance(expr, UnaryOp):
        inner = _render(expr.operand, 8)
        text = f"{expr.op}{inner}"
        return text
    if isinstance(expr, BinOp):
        prec = _PRECEDENCE[expr.op]
        lhs = _render(expr.lhs, prec)
        rhs = _render(expr.rhs, prec + 1)
        text = f"{lhs} {expr.op} {rhs}"
        if prec < parent_prec:
            return f"({text})"
        return text
    if isinstance(expr, Ite):
        text = (
            f"if {_render(expr.cond, 0)} then {_render(expr.then, 0)} "
            f"else {_render(expr.otherwise, 0)}"
        )
        return f"({text})" if parent_prec > 0 else text
    if isinstance(expr, App):
        args = ", ".join(_render(a, 0) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, KVar):
        args = ", ".join(_render(a, 0) for a in expr.args)
        return f"${expr.name}({args})"
    if isinstance(expr, Forall):
        binders = ", ".join(f"{name}: {sort}" for name, sort in expr.binders)
        text = f"forall {binders}. {_render(expr.body, 0)}"
        return f"({text})" if parent_prec > 0 else text
    raise TypeError(f"cannot pretty-print {expr!r}")
