"""Daemon under generated load (fuzz satellite).

A batch of fuzzer-generated crates goes through a live ``run_daemon()``
instance; the daemon's verdicts must match the in-process pipeline
function-for-function (the daemon is just another oracle surface), and
the ``daemon.*`` counters must move monotonically across the batch.
"""

import re

import pytest

from repro.daemon import client
from repro.daemon.testing import run_daemon
from repro.fuzz.generator import crate_seed, generate_crate
from repro.fuzz.oracles import ORACLES, run_oracle

BATCH = [generate_crate(crate_seed(99, index), "tiny") for index in range(4)]


def _daemon_verdicts(record):
    """(name, status, failure tags) rows from a daemon job record."""
    rows = {}
    for fn in record["report"]["functions"]:
        tags = tuple(sorted(f["tag"] for f in fn.get("failures", [])))
        rows[fn["name"]] = (fn["status"], tags)
    return rows


def _inprocess_verdicts(source, name):
    verdict = run_oracle(source, name, ORACLES["baseline"])
    return {v.name: (v.status, v.tags) for v in verdict.functions}


def _counter_value(text, name):
    pattern = re.compile(rf"^{re.escape(name)}(?:{{[^}}]*}})?\s+([0-9.e+-]+)$")
    total = 0.0
    for line in text.splitlines():
        match = pattern.match(line.strip())
        if match:
            total += float(match.group(1))
    return total


class TestDaemonParity:
    def test_generated_batch_matches_in_process(self):
        with run_daemon() as daemon:
            for index, crate in enumerate(BATCH):
                record = client.verify(
                    daemon.url, crate.source, name=f"fuzz-batch-{index}"
                )
                assert record["state"] == "done"
                daemon_rows = _daemon_verdicts(record)
                local_rows = _inprocess_verdicts(crate.source, f"local-{index}")
                # The daemon surface may include trusted/extern rows the
                # oracle view also reports; the tables must be identical.
                assert daemon_rows.keys() == local_rows.keys()
                for name in daemon_rows:
                    d_status, d_tags = daemon_rows[name]
                    l_status, l_tags = local_rows[name]
                    assert d_status == l_status, (
                        f"{name}: daemon={d_status!r} in-process={l_status!r}"
                    )
                    assert d_tags == l_tags

    def test_daemon_counters_move_monotonically(self):
        with run_daemon() as daemon:
            submitted = []
            for index, crate in enumerate(BATCH[:3]):
                client.verify(daemon.url, crate.source, name=f"count-{index}")
                text = client.metrics(daemon.url)
                submitted.append(
                    _counter_value(text, "repro_daemon_jobs_submitted_total")
                )
            assert submitted == sorted(submitted), "counter went backwards"
            assert submitted[-1] >= 3
