"""Differential and invariant tests for the SAT-core search heuristics.

The restart/deletion/phase-saving machinery steers only the *order* of the
CDCL search, never its verdict.  This suite enforces exactly that:

* every configuration in {restarts on/off} × {phase saving on/off} ×
  {clause deletion on/off} returns the brute-force verdict on seeded random
  CNF (with aggressive knobs so restarts and reductions actually fire on
  test-sized instances),
* the online DPLL(T) engine agrees with the offline oracle under every
  configuration on seeded random LIA formulas,
* clause-database reduction never deletes a clause that is the reason of a
  currently-assigned literal, a theory lemma, or a problem clause, and
* the new statistics counters move when their mechanism runs.
"""

import itertools
import random

import pytest

from repro.logic.expr import BinOp, IntConst, Var, add, and_, implies, not_, or_, sub
from repro.smt.sat import DEFAULT_CONFIG, SatConfig, SatSolver, luby, set_default_config
from repro.smt.solver import solve_formula


@pytest.fixture(autouse=True)
def _verify_models():
    """Every SAT answer in this suite is re-checked against the clause DB."""
    SatSolver.verify_models = True
    yield
    SatSolver.verify_models = False


@pytest.fixture
def _restore_default_config():
    saved = DEFAULT_CONFIG
    yield
    set_default_config(saved)


def _aggressive(restarts, phase_saving, clause_deletion):
    """A configuration whose machinery fires on tiny test instances."""
    return SatConfig(
        restarts=restarts,
        luby_unit=1,
        phase_saving=phase_saving,
        clause_deletion=clause_deletion,
        reduce_base=8,
        reduce_inc=4,
    )


CONFIG_GRID = [
    pytest.param(
        _aggressive(restarts, phase_saving, clause_deletion),
        id=f"restarts={restarts}-phases={phase_saving}-deletion={clause_deletion}",
    )
    for restarts, phase_saving, clause_deletion in itertools.product(
        [True, False], repeat=3
    )
]


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {i + 1: bits[i] for i in range(num_vars)}
        if all(
            any(assignment[abs(lit)] == (lit > 0) for lit in clause)
            for clause in clauses
        ):
            return True
    return False


def _random_cnf(rng):
    num_vars = rng.randint(4, 9)
    clauses = []
    for _ in range(rng.randint(8, 40)):
        size = rng.randint(1, 3)
        clause = [
            var if rng.random() < 0.5 else -var
            for var in (rng.randint(1, num_vars) for _ in range(size))
        ]
        clauses.append(clause)
    return num_vars, clauses


def _pigeonhole(pigeons, holes):
    """CNF for 'each pigeon gets a hole, no hole two pigeons' (UNSAT when
    pigeons > holes); the classic resolution-hard family, a reliable source
    of conflicts for exercising restarts and clause deletion."""
    var = lambda p, h: p * holes + h + 1
    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return pigeons * holes, clauses


def _solve_cnf(num_vars, clauses, config):
    solver = SatSolver(config=config)
    for _ in range(num_vars):
        solver.new_var()
    for clause in clauses:
        if not solver.add_clause(clause):
            return None, solver
    return solver.solve(), solver


class TestLubySequence:
    def test_known_prefix(self):
        assert [luby(i) for i in range(15)] == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]

    def test_powers_of_two_only(self):
        for i in range(200):
            value = luby(i)
            assert value & (value - 1) == 0


class TestConfigDifferential:
    @pytest.mark.parametrize("config", CONFIG_GRID)
    def test_random_cnf_matches_brute_force(self, config):
        rng = random.Random(58_000)
        for _ in range(40):
            num_vars, clauses = _random_cnf(rng)
            expected = brute_force_sat(num_vars, clauses)
            model, _ = _solve_cnf(num_vars, clauses, config)
            assert (model is not None) == expected

    @pytest.mark.parametrize("config", CONFIG_GRID)
    def test_pigeonhole_unsat_under_every_config(self, config):
        num_vars, clauses = _pigeonhole(5, 4)
        model, _ = _solve_cnf(num_vars, clauses, config)
        assert model is None

    @pytest.mark.parametrize("config", CONFIG_GRID)
    def test_incremental_solve_sequence_agrees(self, config):
        """Interleaved add_clause/solve under every configuration tracks the
        default configuration answer-for-answer (trail reuse, restarts and
        deletion must all survive mid-trail clause installation)."""
        rng = random.Random(77_123)
        for _ in range(10):
            num_vars, clauses = _random_cnf(rng)
            reference = SatSolver()
            subject = SatSolver(config=config)
            for _ in range(num_vars):
                reference.new_var()
                subject.new_var()
            dead = False
            for i, clause in enumerate(clauses):
                ok_ref = reference.add_clause(list(clause))
                ok_sub = subject.add_clause(list(clause))
                assert ok_ref == ok_sub
                dead = dead or not ok_ref
                if dead:
                    break
                if i % 4 == 3:
                    assert (reference.solve() is None) == (subject.solve() is None)
            if not dead:
                assert (reference.solve() is None) == (subject.solve() is None)

    def test_seed_jitter_preserves_verdicts(self):
        rng = random.Random(31_337)
        for _ in range(15):
            num_vars, clauses = _random_cnf(rng)
            expected = brute_force_sat(num_vars, clauses)
            for seed in (0, 1, 17):
                model, _ = _solve_cnf(num_vars, clauses, SatConfig(seed=seed))
                assert (model is not None) == expected


# -- online-vs-offline harness under every configuration ----------------------

_VARS = [Var("x"), Var("y"), Var("z")]
_CONSTS = [IntConst(-2), IntConst(0), IntConst(1), IntConst(3)]


def _random_term(rng, depth=2):
    if depth == 0 or rng.random() < 0.4:
        return rng.choice(_VARS + _CONSTS)
    return rng.choice([add, sub])(_random_term(rng, depth - 1), _random_term(rng, depth - 1))


def _random_atom(rng):
    return BinOp(rng.choice(["<", "<=", ">", ">=", "=", "!="]), _random_term(rng), _random_term(rng))


def _random_formula(rng, depth=2):
    if depth == 0 or rng.random() < 0.3:
        return _random_atom(rng)
    shape = rng.random()
    lhs = _random_formula(rng, depth - 1)
    rhs = _random_formula(rng, depth - 1)
    if shape < 0.35:
        return and_(lhs, rhs)
    if shape < 0.7:
        return or_(lhs, rhs)
    if shape < 0.85:
        return implies(lhs, rhs)
    return not_(lhs)


class TestEnginesAgreeUnderEveryConfig:
    @pytest.mark.parametrize("config", CONFIG_GRID)
    def test_online_offline_differential(self, config, _restore_default_config):
        set_default_config(config)
        rng = random.Random(662_000)
        for _ in range(20):
            formula = _random_formula(rng, depth=3)
            offline = solve_formula(formula, engine="offline")
            online = solve_formula(formula, engine="online")
            assert online.result == offline.result, f"diverged on {formula}"


# -- clause-database reduction invariants -------------------------------------


class TestReductionInvariants:
    def _checked_reduce(self, monkeypatch, calls):
        original = SatSolver._reduce_db

        def checked(solver):
            permanent = [
                ci
                for ci, clause in enumerate(solver._clauses)
                if clause is not None and ci not in solver._clause_lbd
            ]
            original(solver)
            calls.append(1)
            # Problem clauses and theory lemmas are permanent.
            for ci in permanent:
                assert solver._clauses[ci] is not None
            # Reasons of assigned literals are live antecedents.
            reason = solver._reason
            for lit in solver._trail:
                ri = reason[lit if lit > 0 else -lit]
                if ri >= 0:
                    assert solver._clauses[ri] is not None

        monkeypatch.setattr(SatSolver, "_reduce_db", checked)

    def test_never_drops_reason_or_problem_clauses(self, monkeypatch):
        calls = []
        self._checked_reduce(monkeypatch, calls)
        num_vars, clauses = _pigeonhole(6, 5)
        model, solver = _solve_cnf(
            num_vars, clauses, SatConfig(reduce_base=8, reduce_inc=4, luby_unit=1)
        )
        assert model is None
        assert calls, "reduction never fired; the invariant was not exercised"
        assert solver.solve_clauses_deleted > 0

    def test_never_drops_theory_lemmas(self, monkeypatch, _restore_default_config):
        """Same invariant inside full DPLL(T) runs, where the permanent set
        includes the theory lemmas installed mid-search."""
        calls = []
        self._checked_reduce(monkeypatch, calls)
        set_default_config(SatConfig(reduce_base=2, reduce_inc=1, luby_unit=1))
        rng = random.Random(93_500)
        for _ in range(30):
            solve_formula(_random_formula(rng, depth=3), engine="online")
        # Reduction may or may not fire on these small formulas; the assertions
        # inside ``checked`` are the test.  The pigeonhole test above guarantees
        # the wrapper itself is exercised.


class TestCounters:
    def test_restart_counter_moves(self):
        num_vars, clauses = _pigeonhole(5, 4)
        model, solver = _solve_cnf(num_vars, clauses, SatConfig(luby_unit=1))
        assert model is None
        assert solver.solve_restarts > 0
        assert solver.solve_learned > 0
        assert solver.solve_lbd_total >= solver.solve_learned

    def test_restarts_off_never_restarts(self):
        num_vars, clauses = _pigeonhole(5, 4)
        model, solver = _solve_cnf(num_vars, clauses, SatConfig(restarts=False))
        assert model is None
        assert solver.solve_restarts == 0

    def test_phase_saving_hits_move(self):
        # Pigeonhole backtracks constantly, so decisions after the first few
        # conflicts find saved polarities to reuse.
        num_vars, clauses = _pigeonhole(6, 5)
        model, solver = _solve_cnf(num_vars, clauses, SatConfig(luby_unit=1))
        assert model is None
        assert solver.solve_phase_saving_hits > 0

    def test_deletion_off_deletes_nothing(self):
        num_vars, clauses = _pigeonhole(6, 5)
        model, solver = _solve_cnf(
            num_vars, clauses, SatConfig(clause_deletion=False, luby_unit=1)
        )
        assert model is None
        assert solver.solve_clauses_deleted == 0


class TestAutoLubyUnit:
    """ROADMAP item-3 leftover: under the fixed default ``luby_unit=64`` the
    restart machinery never fired on realistically-sized checks — the search
    finishes before the first restart budget is spent.  ``luby_auto`` (on by
    default) scales the unit down with the variable count so default-config
    runs genuinely restart, while steering only search order, never verdicts.
    """

    def test_default_config_restarts_on_adversarial_input(self):
        num_vars, clauses = _pigeonhole(5, 4)
        model, solver = _solve_cnf(num_vars, clauses, SatConfig())
        assert model is None
        assert solver.solve_restarts > 0

    def test_fixed_unit_never_fires(self):
        """The regression being fixed: auto-scaling off restores the fixed
        64-conflict unit, under which the same instance finishes without a
        single restart."""
        num_vars, clauses = _pigeonhole(5, 4)
        model, solver = _solve_cnf(num_vars, clauses, SatConfig(luby_auto=False))
        assert model is None
        assert solver.solve_restarts == 0

    def test_auto_scaling_preserves_cnf_verdicts(self):
        rng = random.Random(424_242)
        for _ in range(25):
            num_vars, clauses = _random_cnf(rng)
            expected = brute_force_sat(num_vars, clauses)
            for auto in (True, False):
                model, _ = _solve_cnf(num_vars, clauses, SatConfig(luby_auto=auto))
                assert (model is not None) == expected

    @pytest.mark.parametrize("name", ["dotprod", "wave"])
    def test_table1_verdicts_identical_auto_on_off(
        self, name, _restore_default_config
    ):
        from repro.bench.fixpoint_bench import (
            collect_function_constraints,
            solve_constraints,
            table1_programs,
        )

        batch = collect_function_constraints(table1_programs([name])[0])
        assert batch
        set_default_config(SatConfig(luby_auto=True))
        auto = solve_constraints(batch, "incremental")
        set_default_config(SatConfig(luby_auto=False))
        fixed = solve_constraints(batch, "incremental")
        assert auto.results == fixed.results
