"""Counterexample-carrying diagnostics: golden snippets and model soundness.

Two families of tests over deliberately-broken Table-1 variants
(``tests/golden/*.rs``):

* **golden rendering** — the full rustc-style caret snippet (span, source
  line, signature note, counterexample valuation) must match the committed
  ``*.expected.txt`` byte for byte.  Regenerate after an intentional change
  with ``UPDATE_GOLDEN=1 pytest tests/test_diagnostics.py``.
* **model soundness** — every counterexample the solver reports must
  actually falsify its obligation: pinning the model's values onto the
  clause's refutation query must keep it satisfiable.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core import verify_source
from repro.core.genv import GlobalEnv
from repro.core.rtypes import reset_fresh_names
from repro.diagnostics import model_refutes, render_result
from repro.diagnostics.counterexample import counterexample_from_model
from repro.fixpoint import FixpointSolver
from repro.fixpoint.constraint import c_conj
from repro.core.checker import Checker
from repro.lang import parse_program
from repro.mir.lower import lower_function
from repro.mir.typeinfer import ProgramTypes, infer_types

GOLDEN = Path(__file__).parent / "golden"

CASES = [
    "bsearch_wrong_return",
    "dotprod_length_mismatch",
    "kmeans_init_off_by_one",
    "rmat_get_transposed",
    "wave_translate_strict_bound",
]

_RESULTS = {}


def _verify(case: str):
    """Verify one golden program (memoised — bsearch takes ~20s)."""
    if case not in _RESULTS:
        source = (GOLDEN / f"{case}.rs").read_text()
        # Golden counterexample values must not depend on which tests ran
        # earlier in the process: binder names feed the solver's variable
        # ordering, so pin them.
        reset_fresh_names()
        _RESULTS[case] = (verify_source(source), source)
    return _RESULTS[case]


@pytest.mark.parametrize("case", CASES)
def test_broken_variant_fails_with_counterexample(case):
    result, _ = _verify(case)
    assert not result.ok, f"{case} was expected to fail verification"
    for diagnostic in result.diagnostics:
        assert diagnostic.span is not None, f"{case}: diagnostic without a span"
        assert diagnostic.sig_span is not None, f"{case}: diagnostic without a sig span"
        assert diagnostic.counterexample, f"{case}: diagnostic without a counterexample"
        # integer fragment: every displayed value is an int or a bool
        for name, value in diagnostic.counterexample.bindings:
            assert isinstance(value, (int, bool)), (case, name, value)


@pytest.mark.parametrize("case", CASES)
def test_golden_rendered_snippet(case):
    result, source = _verify(case)
    rendered = render_result(result, source, f"{case}.rs") + "\n"
    expected_path = GOLDEN / f"{case}.expected.txt"
    if os.environ.get("UPDATE_GOLDEN"):
        expected_path.write_text(rendered)
    assert expected_path.exists(), f"missing golden file {expected_path}"
    assert rendered == expected_path.read_text()


def _fixpoint_errors(case: str):
    """Run the checking pipeline by hand so the raw FixpointErrors (with
    their hypotheses/goal/model triples) are observable."""
    source = (GOLDEN / f"{case}.rs").read_text()
    reset_fresh_names()
    program = parse_program(source)
    genv = GlobalEnv()
    genv.register_program(program)
    rust_context = ProgramTypes.from_program(program)
    errors = []
    for fn in program.functions:
        if fn.body is None or genv.signature(fn.name).trusted:
            continue
        body = lower_function(fn)
        infer_types(body, rust_context)
        checker = Checker(body, genv, genv.signature(fn.name))
        output = checker.check()
        solver = FixpointSolver()
        for decl in output.kvar_decls.values():
            solver.declare(decl)
        result = solver.solve(c_conj(*output.constraints))
        errors.extend((fn, body, error) for error in result.errors)
    return errors


@pytest.mark.parametrize(
    "case",
    ["dotprod_length_mismatch", "kmeans_init_off_by_one", "wave_translate_strict_bound"],
)
def test_counterexample_model_falsifies_obligation(case):
    """Model soundness: substituting the reported valuation back into the
    failed clause keeps its refutation satisfiable."""
    errors = _fixpoint_errors(case)
    assert errors, f"{case}: expected at least one fixpoint error"
    for fn, body, error in errors:
        assert error.model, f"{case}/{fn.name}: error without a model"
        assert error.goal is not None
        sorts = dict(error.constraint.binders)
        assert model_refutes(error.hypotheses, error.goal, error.model, sorts), (
            f"{case}/{fn.name}: counterexample does not falsify its obligation"
        )
        # ...and the source-level mapping keeps at least one binding.
        counterexample = counterexample_from_model(
            error.model,
            error.constraint.binders,
            set(body.local_types),
            {name for name, _ in error.constraint.binders},
        )
        assert counterexample is not None and counterexample.bindings


def test_bsearch_span_points_at_failing_expression():
    """Acceptance check: the broken bsearch diagnostic points at the tail
    expression `result` and carries an integer counterexample."""
    result, source = _verify("bsearch_wrong_return")
    diagnostic = result.diagnostics[0]
    lines = source.splitlines()
    blamed = lines[diagnostic.span.line - 1][
        diagnostic.span.column - 1 : diagnostic.span.end_column - 1
    ]
    assert blamed == "result"
    assert diagnostic.tag == "return"
    bindings = dict(diagnostic.counterexample.bindings)
    assert bindings.get("n") == 0 and bindings.get("result") == 0
    # The signature note points at the #[flux::sig] attribute line.
    assert lines[diagnostic.sig_span.line - 1].lstrip().startswith("#[flux::sig")


def test_underscore_local_does_not_alias_in_counterexample():
    """`_x` and `x` are distinct locals; binder hints must preserve the
    underscore so the counterexample never reports one under the other's
    name (regression: hints used to strip leading underscores)."""
    source = (
        "#[flux::sig(fn(x: i32[@x]) -> i32{v: v > x})]\n"
        "fn collide(x: i32) -> i32 {\n"
        "    let mut _x = 0;\n"
        "    let mut i = 0;\n"
        "    while i < 3 {\n"
        "        _x = _x + 100;\n"
        "        i += 1;\n"
        "    }\n"
        "    x\n"
        "}\n"
    )
    reset_fresh_names()
    result = verify_source(source)
    assert not result.ok
    bindings = dict(result.diagnostics[0].counterexample.bindings)
    # the refutation needs v = x, i.e. x itself is the witness — and the
    # loop-carried `_x` must appear (if at all) under its own name
    assert "x" in bindings
    assert bindings.get("_x") != "x"


def test_service_report_carries_structured_counterexample():
    """The same counterexample appears, structured, in the service JSON."""
    from repro.service import VerifyJob, VerifySession, verify_job

    source = (GOLDEN / "wave_translate_strict_bound.rs").read_text()
    reset_fresh_names()
    report = verify_job(VerifyJob(source=source, name="wave"), VerifySession(use_cache=False))
    assert not report.ok
    payload = report.to_dict()
    failures = [
        failure
        for fn in payload["functions"]
        for failure in fn["failures"]
    ]
    assert failures, "expected structured failures in the JSON report"
    failure = failures[0]
    assert failure["span"]["line"] >= 1
    assert failure["counterexample"]["bindings"], failure
    # every structured value is JSON-native (int/bool/str)
    for value in failure["counterexample"]["bindings"].values():
        assert isinstance(value, (int, bool, str))
