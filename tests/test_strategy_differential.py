"""Fast differential gate: naive and worklist strategies agree post-refactor.

The full Table-1 differential lives in ``benchmarks/test_fixpoint_incremental``;
this tier-1 test runs the same comparison on the two cheapest programs so a
divergence introduced by the interning/fast-path refactor is caught by the
default ``pytest`` run, not only by the benchmark lane.
"""

import pytest

from repro.bench.fixpoint_bench import (
    collect_function_constraints,
    solve_constraints,
    table1_programs,
)


@pytest.mark.parametrize("name", ["dotprod", "wave"])
def test_naive_and_worklist_verdicts_agree(name):
    batch = collect_function_constraints(table1_programs([name])[0])
    assert batch
    naive = solve_constraints(batch, "naive")
    worklist = solve_constraints(batch, "incremental")
    assert naive.results == worklist.results
