"""Tests for the Prusti-style program-logic baseline."""

import pytest

from repro.prusti import verify_source_prusti


def assert_prusti_ok(source: str, **kwargs):
    result = verify_source_prusti(source, **kwargs)
    assert result.ok, [
        (fn.name, fn.failed) for fn in result.functions if not fn.ok
    ]
    return result


def assert_prusti_fails(source: str, **kwargs):
    result = verify_source_prusti(source, **kwargs)
    assert not result.ok
    return result


class TestContracts:
    def test_simple_postcondition(self):
        source = """
        #[ensures(result >= x)]
        #[ensures(result >= 0)]
        fn abs(x: i32) -> i32 {
            if x < 0 { -x } else { x }
        }
        """
        assert_prusti_ok(source)

    def test_wrong_postcondition(self):
        source = """
        #[ensures(result > x)]
        fn identity(x: i32) -> i32 { x }
        """
        assert_prusti_fails(source)

    def test_precondition_used(self):
        source = """
        #[requires(x > 0)]
        #[ensures(result > 1)]
        fn inc(x: i32) -> i32 { x + 1 }
        """
        assert_prusti_ok(source)

    def test_callee_contract_used(self):
        source = """
        #[requires(x >= 0)]
        #[ensures(result >= 1)]
        fn bump(x: i32) -> i32 { x + 1 }

        #[ensures(result >= 1)]
        fn caller() -> i32 { bump(3) }
        """
        assert_prusti_ok(source)

    def test_callee_precondition_checked(self):
        source = """
        #[requires(x >= 0)]
        #[ensures(result >= 1)]
        fn bump(x: i32) -> i32 { x + 1 }

        fn caller() -> i32 { bump(-3) }
        """
        result = verify_source_prusti(source)
        assert not result.function("caller").ok


class TestVectors:
    def test_in_bounds_access(self):
        source = """
        #[requires(v.len() > 0)]
        fn first(v: &RVec<i32>) -> i32 {
            v.lookup(0)
        }
        """
        assert_prusti_ok(source)

    def test_out_of_bounds_detected(self):
        source = """
        fn first(v: &RVec<i32>) -> i32 {
            v.lookup(0)
        }
        """
        assert_prusti_fails(source)

    def test_push_axioms(self):
        source = """
        #[ensures(result.len() == 2)]
        fn two() -> RVec<i32> {
            let mut v = RVec::new();
            v.push(1);
            v.push(2);
            v
        }
        """
        assert_prusti_ok(source)

    def test_store_frame_axiom(self):
        source = """
        #[requires(v.len() > 1)]
        #[ensures(v.lookup(0) == old(v.lookup(0)))]
        #[ensures(v.lookup(1) == 5)]
        fn set_second(v: &mut RVec<i32>) {
            v.store(1, 5);
        }
        """
        assert_prusti_ok(source)

    def test_loop_with_invariant(self):
        source = """
        #[requires(n >= 0)]
        #[ensures(result.len() == n)]
        fn init_zeros(n: usize) -> RVec<i32> {
            let mut vec = RVec::new();
            let mut i = 0;
            while i < n {
                body_invariant!(i <= n);
                body_invariant!(vec.len() == i);
                vec.push(0);
                i += 1;
            }
            vec
        }
        """
        assert_prusti_ok(source)

    def test_loop_without_invariant_fails(self):
        # Without the body_invariant! annotations the baseline cannot relate
        # the loop counter to the vector length: exactly the annotation burden
        # §5.4 describes.
        source = """
        #[requires(n >= 0)]
        #[ensures(result.len() == n)]
        fn init_zeros(n: usize) -> RVec<i32> {
            let mut vec = RVec::new();
            let mut i = 0;
            while i < n {
                vec.push(0);
                i += 1;
            }
            vec
        }
        """
        assert_prusti_fails(source)

    def test_quantified_invariant(self):
        source = """
        #[requires(n >= 0)]
        #[ensures(forall(|k: usize| (0 <= k && k < n) ==> result.lookup(k) >= 0))]
        fn positives(n: usize) -> RVec<i32> {
            let mut vec = RVec::new();
            let mut i = 0;
            while i < n {
                body_invariant!(i <= n);
                body_invariant!(vec.len() == i);
                body_invariant!(forall(|k: usize| (0 <= k && k < vec.len()) ==> vec.lookup(k) >= 0));
                vec.push(1);
                i += 1;
            }
            vec
        }
        """
        assert_prusti_ok(source)

    def test_bounds_inside_loop_via_invariant(self):
        source = """
        #[requires(v.len() > 0)]
        fn sum(v: &RVec<i32>) -> i32 {
            let mut total = 0;
            let mut i = 0;
            while i < v.len() {
                body_invariant!(i <= v.len());
                total = total + v.lookup(i);
                i += 1;
            }
            total
        }
        """
        assert_prusti_ok(source)

    def test_swap_axioms(self):
        source = """
        #[requires(v.len() > 1)]
        #[ensures(v.len() == old(v.len()))]
        fn flip(v: &mut RVec<i32>) {
            v.swap(0, 1);
        }
        """
        assert_prusti_ok(source)


class TestMetrics:
    def test_spec_and_invariant_counting(self):
        source = """
        #[requires(n >= 0)]
        #[ensures(result.len() == n)]
        fn init(n: usize) -> RVec<i32> {
            let mut v = RVec::new();
            let mut i = 0;
            while i < n {
                body_invariant!(i <= n);
                body_invariant!(v.len() == i);
                v.push(0);
                i += 1;
            }
            v
        }
        """
        result = verify_source_prusti(source)
        fn = result.function("init")
        assert fn.spec_lines == 2
        assert fn.invariant_lines == 2
        assert fn.num_obligations >= 3
