"""The MiniRust crate generator: determinism, validity, round-trips.

Three contracts keep the differential harness trustworthy:

* **determinism** — a campaign seed fully determines every generated crate,
  so any finding is replayable from its seed alone;
* **validity** — every generated crate parses, and the generator's promise
  (which functions verify, which deliberately fail) matches the checker on
  sampled crates;
* **round-trip** — the renderer used by the minimizer reproduces the exact
  AST, so delta-debugging surgery never changes program meaning by accident.
"""

import pytest

from repro.fuzz.generator import PROFILES, crate_seed, generate_crate
from repro.fuzz.render import render_program, strip_lines
from repro.lang.parser import parse_program


class TestDeterminism:
    def test_same_seed_same_source(self):
        for index in range(5):
            seed = crate_seed(42, index)
            assert generate_crate(seed, "small").source == (
                generate_crate(seed, "small").source
            )

    def test_crate_seed_spreads(self):
        """Neighbouring campaign indices must not produce near-identical
        streams: the mixer has to decorrelate seed/index pairs."""
        seeds = {crate_seed(0, i) for i in range(200)}
        seeds |= {crate_seed(1, i) for i in range(200)}
        assert len(seeds) == 400

    def test_profiles_are_distinct_streams(self):
        seed = crate_seed(7, 0)
        assert (
            generate_crate(seed, "tiny").source
            != generate_crate(seed, "small").source
        )


class TestShape:
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_function_count_within_profile_bounds(self, profile):
        if profile == "stress":
            pytest.skip("stress crates are benchmark-lane sized")
        spec = PROFILES[profile]
        for index in range(4):
            crate = generate_crate(crate_seed(3, index), profile)
            assert spec.min_functions <= len(crate.functions) <= spec.max_functions

    def test_expected_failures_are_subset(self):
        for index in range(8):
            crate = generate_crate(crate_seed(11, index), "small")
            names = {fn.name for fn in crate.functions}
            assert set(crate.expected_failures) <= names

    def test_crate_profile_emits_call_dags(self):
        """The larger profiles must actually exercise cross-function calls;
        a generator that silently stopped emitting callers would hollow out
        the harness without failing anything."""
        crate = generate_crate(crate_seed(5, 0), "crate")
        callers = [fn for fn in crate.functions if fn.calls]
        assert callers, "no calling functions in a crate-profile crate"
        names = {fn.name for fn in crate.functions}
        for fn in callers:
            assert set(fn.calls) <= names


class TestRoundTrip:
    @pytest.mark.parametrize("profile", ["tiny", "small"])
    def test_parse_render_parse_fixpoint(self, profile):
        for index in range(10):
            crate = generate_crate(crate_seed(13, index), profile)
            first = strip_lines(parse_program(crate.source))
            rendered = render_program(first)
            second = strip_lines(parse_program(rendered))
            assert first == second

    def test_repo_programs_round_trip(self):
        from repro.bench.programs import benchmark_programs

        for program in benchmark_programs():
            first = strip_lines(parse_program(program.flux_source))
            assert first == strip_lines(parse_program(render_program(first)))


class TestExpectationValidity:
    def test_generator_promise_matches_checker_on_sample(self):
        """The deep version of this runs continuously in the fuzz lane; here
        a small deterministic sample keeps the promise honest in tier-1."""
        from repro.service.api import VerifyJob, verify_job
        from repro.service.session import VerifySession

        for index in range(3):
            crate = generate_crate(crate_seed(0, index), "small")
            session = VerifySession(use_cache=False)
            with session.activate():
                report = verify_job(
                    VerifyJob(source=crate.source, name=f"sample-{index}"), session
                )
            expected_fail = set(crate.expected_failures)
            for fn in report.functions:
                should_verify = fn.name not in expected_fail
                assert (fn.status == "ok") == should_verify, (
                    f"crate seed={crate.seed} fn={fn.name}: generator promised "
                    f"{'ok' if should_verify else 'failure'}, checker said "
                    f"{fn.status!r}"
                )
