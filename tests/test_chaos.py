"""Chaos containment: injected crashes/hangs/OOMs across the scheduler,
portfolio and daemon must cost structured per-function verdicts — never
changed answers, never orphaned processes."""

import asyncio
import multiprocessing

import pytest

from repro import faults
from repro.daemon.protocol import JobRequest
from repro.daemon.queue import JobQueue
from repro.daemon.workers import WorkerPool
from repro.fuzz.oracles import _verdicts
from repro.service.api import VerifyJob, verify_job
from repro.service.session import VerifySession

# Five independent functions so a parallel scheduler always has innocent
# bystanders in flight next to the faulted one.
CRATE = """
#[flux::sig(fn(i32[@x]) -> i32{v: v > x})]
fn f0(x: i32) -> i32 { x + 1 }

#[flux::sig(fn(i32[@x]) -> i32{v: v > x})]
fn f1(x: i32) -> i32 { x + 2 }

#[flux::sig(fn(i32[@x]) -> i32{v: v > x})]
fn f2(x: i32) -> i32 { x + 3 }

#[flux::sig(fn(i32[@x]) -> i32[x])]
fn f3(x: i32) -> i32 { x + 1 }

#[flux::sig(fn(i32[@x]) -> i32{v: v >= x})]
fn f4(x: i32) -> i32 { x }
"""

FAULT_TAGS = ("worker-crashed", "deadline-exceeded", "resource-exhausted")


def _verify(source: str, **session_kwargs):
    session = VerifySession(use_cache=False, **session_kwargs)
    with session.activate():
        report = verify_job(VerifyJob(source=source, name="chaos"), session)
    return report, session


def _by_name(report):
    return {v.name: v for v in _verdicts(report)}


def _plan(*specs: faults.FaultSpec) -> faults.FaultPlan:
    return faults.FaultPlan(seed=0, specs=specs)


@pytest.fixture()
def clean_verdicts():
    report, _ = _verify(CRATE, jobs=2)
    return _by_name(report)


class TestSchedulerContainment:
    def test_sigkilled_worker_costs_one_rerun(self, clean_verdicts):
        # Satellite: SIGKILL one scheduler worker mid-crate.  attempts=1
        # makes the crash transient — the injection registry fires it on
        # the function's first attempt only, so the single retry after the
        # pool rebuild must succeed and every verdict must match the clean
        # run byte for byte.
        plan = _plan(
            faults.FaultSpec(site="scheduler.worker", kind="crash", match="f2", attempts=1)
        )
        with faults.inject_faults(plan):
            report, session = _verify(CRATE, jobs=2)
        assert _by_name(report) == clean_verdicts
        # The crash cost exactly one pool rebuild and at least the one
        # lost function re-ran (innocent bystanders lost with the pool may
        # legitimately ride along in the retry round).
        assert session.metrics.value("faults.pool_rebuilds") == 1
        assert session.metrics.value("faults.worker_crashes") == 1
        assert session.metrics.value("faults.retries") >= 1

    def test_persistent_crash_quarantines_only_target(self, clean_verdicts):
        # A function that kills every worker that touches it trips the
        # circuit breaker: it alone degrades to WORKER_CRASHED, everyone
        # else's verdict is byte-identical to the clean run.
        plan = _plan(faults.FaultSpec(site="scheduler.worker", kind="crash", match="f2"))
        with faults.inject_faults(plan):
            report, session = _verify(CRATE, jobs=2)
        verdicts = _by_name(report)
        assert verdicts["f2"].status != "ok"
        assert verdicts["f2"].tags == ("worker-crashed",)
        for name, clean in clean_verdicts.items():
            if name != "f2":
                assert verdicts[name] == clean
        assert session.metrics.value("faults.pool_rebuilds") == 1  # at most once
        assert session.metrics.value("faults.breaker_trips") == 1

    @pytest.mark.parametrize(
        "kind,tag",
        [("hang", "deadline-exceeded"), ("oom", "resource-exhausted")],
    )
    def test_hang_and_oom_degrade_to_structured_verdicts(
        self, clean_verdicts, kind, tag
    ):
        plan = _plan(
            faults.FaultSpec(
                site="scheduler.worker", kind=kind, match="f2", delay=30.0
            )
        )
        with faults.inject_faults(plan):
            report, _ = _verify(CRATE, jobs=2, fn_deadline=0.5)
        verdicts = _by_name(report)
        assert verdicts["f2"].tags == (tag,)
        for name, clean in clean_verdicts.items():
            if name != "f2":
                assert verdicts[name] == clean

    def test_serial_path_contains_the_same_faults(self, clean_verdicts):
        # jobs=1 has no worker process to kill; the crash surfaces as
        # InjectedCrash and must degrade to the same structured verdict.
        plan = _plan(faults.FaultSpec(site="scheduler.worker", kind="crash", match="f2"))
        with faults.inject_faults(plan):
            report, _ = _verify(CRATE, jobs=1)
        verdicts = _by_name(report)
        assert verdicts["f2"].tags == ("worker-crashed",)
        for name, clean in clean_verdicts.items():
            if name != "f2":
                assert verdicts[name] == clean


class TestPortfolioContainment:
    def test_sigkilled_racer_does_not_change_the_verdict(self, clean_verdicts):
        # Kill exactly one portfolio member (the seeded grid member whose
        # label carries ``-s1``); the surviving racer answers, verdicts
        # match the clean run, and no child process outlives the race.
        baseline = tuple(faults.live_children())
        plan = _plan(faults.FaultSpec(site="portfolio.child", kind="crash", match="-s1"))
        with faults.inject_faults(plan):
            report, _ = _verify(CRATE, portfolio=2)
        assert _by_name(report) == clean_verdicts
        multiprocessing.active_children()
        leaked = [pid for pid in faults.live_children() if pid not in baseline]
        assert leaked == []


class TestDaemonContainment:
    # The daemon half of the injection grid: crash -> retry/WORKER_CRASHED
    # (covered in test_daemon), hang -> TIMEOUT with the worker reaped,
    # oom -> a structured INTERNAL error, never a dead daemon.

    @staticmethod
    def _run_queue_job(plan, *, name, job_timeout=None, job_retries=1):
        async def scenario():
            pool = WorkerPool({"cache_dir": None, "session_jobs": 1}, size=1)
            queue = JobQueue(
                pool, workers=1, job_timeout=job_timeout, job_retries=job_retries
            )
            queue.start()
            record, _ = queue.submit(JobRequest(source=CRATE, name=name))
            while record.active:
                await asyncio.sleep(0.01)
            await queue.stop()
            return record, pool

        with faults.inject_faults(plan):
            return asyncio.run(scenario())

    def test_daemon_hang_times_out_and_reaps_worker(self):
        baseline = tuple(faults.live_children())
        plan = _plan(faults.FaultSpec(site="daemon.job", kind="hang", delay=30.0))
        record, pool = self._run_queue_job(plan, name="hung", job_timeout=0.3)
        assert record.state == "failed"
        assert record.error["kind"] == "TIMEOUT"
        assert pool.retired_total == 1
        multiprocessing.active_children()
        leaked = [pid for pid in faults.live_children() if pid not in baseline]
        assert leaked == []

    def test_daemon_oom_is_structured_error(self):
        plan = _plan(faults.FaultSpec(site="daemon.job", kind="oom"))
        record, pool = self._run_queue_job(plan, name="oom")
        assert record.state == "failed"
        assert record.error["kind"] == "INTERNAL"
        assert "memory" in record.error["message"]
        # The worker caught the MemoryError itself; it was not killed.
        assert pool.retired_total == 0

    def test_daemon_crash_retry_is_counted(self):
        plan = _plan(
            faults.FaultSpec(site="daemon.job", kind="crash", match="flaky", attempts=1)
        )
        record, pool = self._run_queue_job(plan, name="flaky")
        assert record.state == "done"
        assert record.meta["attempts"] == 2
        assert pool.retired_total == 1


class TestChaosCampaign:
    def test_small_campaign_is_divergence_free(self):
        # The fuzz-level chaos harness end to end: parity rule plus the
        # zero-orphan audit over a handful of generated crates.
        from repro.fuzz.driver import FuzzConfig, run_fuzz
        from repro.obs import ObsContext, use_obs

        config = FuzzConfig(seed=1, budget=4, profile="small", chaos=True)
        with use_obs(ObsContext.create()):
            report = run_fuzz(config)
        assert report.crates == 4
        details = [(d.kind, d.detail) for d in report.divergences]
        assert details == []
