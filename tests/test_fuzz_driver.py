"""The differential campaign driver, including the injected-bug self-test.

The harness is only trustworthy if it demonstrably *catches* bugs, so the
centrepiece here plants a real soundness bug in the online theory solver
(``REPRO_INJECT_THEORY_BUG=strict-bounds`` un-tightens strict upper
bounds) and requires the campaign to find it, shrink the repro to a
handful of functions, and persist a replayable corpus entry.
"""

import pytest

from repro.fuzz.driver import FuzzConfig, run_fuzz
from repro.fuzz.oracles import ORACLES, compare_verdicts, resolve_oracles, run_oracle
from repro.obs import ObsContext, use_obs


def _campaign(config):
    obs = ObsContext.create()
    with use_obs(obs):
        report = run_fuzz(config)
    return report, obs.registry.snapshot()


def _counter(snapshot, name):
    entry = snapshot.get(name)
    return entry["value"] if entry else 0


class TestCleanCampaign:
    def test_small_campaign_has_no_divergences(self):
        config = FuzzConfig(
            seed=0,
            budget=4,
            profile="tiny",
            oracles=tuple(resolve_oracles(["baseline", "naive", "offline"])),
        )
        report, snapshot = _campaign(config)
        assert report.ok, [d.detail for d in report.divergences]
        assert report.crates == 4
        assert report.oracle_runs == 12
        assert _counter(snapshot, "fuzz.crates") == 4
        assert _counter(snapshot, "fuzz.oracle_runs") == 12
        assert _counter(snapshot, "fuzz.functions") == report.functions > 0

    def test_budget_seconds_stops_early(self):
        config = FuzzConfig(
            seed=0,
            budget=10_000,
            budget_seconds=0.0,
            profile="tiny",
            oracles=tuple(resolve_oracles(["baseline", "naive"])),
        )
        report, _ = _campaign(config)
        assert report.crates == 0


class TestOracleComparison:
    def test_same_crate_verdicts_compare_equal(self):
        from repro.fuzz.generator import crate_seed, generate_crate

        crate = generate_crate(crate_seed(1, 0), "tiny")
        a = run_oracle(crate.source, "a", ORACLES["baseline"])
        b = run_oracle(crate.source, "b", ORACLES["naive"])
        assert compare_verdicts(a, b) is None

    def test_status_difference_is_reported(self):
        from repro.fuzz.oracles import CrateVerdict, Verdict

        left = CrateVerdict(
            oracle="a", engine="online", functions=(Verdict("f", "ok", ()),)
        )
        right = CrateVerdict(
            oracle="b", engine="online", functions=(Verdict("f", "error", ("t",)),)
        )
        mismatch = compare_verdicts(left, right)
        assert mismatch is not None and "status" in mismatch

    def test_detail_difference_only_matters_same_engine(self):
        from repro.fuzz.oracles import CrateVerdict, Verdict

        left = CrateVerdict(
            oracle="a", engine="online",
            functions=(Verdict("f", "error", ("t",), ("model x=1",)),),
        )
        right_other_engine = CrateVerdict(
            oracle="b", engine="offline",
            functions=(Verdict("f", "error", ("t",), ("model x=2",)),),
        )
        right_same_engine = CrateVerdict(
            oracle="b", engine="online",
            functions=(Verdict("f", "error", ("t",), ("model x=2",)),),
        )
        assert compare_verdicts(left, right_other_engine) is None
        assert compare_verdicts(left, right_same_engine) is not None


class TestInjectedBugSelfTest:
    """Acceptance criterion: a planted solver bug must be caught and shrunk
    to at most 5 functions, fully automatically."""

    @pytest.fixture
    def _planted_bug(self, monkeypatch):
        monkeypatch.setenv("REPRO_INJECT_THEORY_BUG", "strict-bounds")

    def test_campaign_catches_and_minimizes(self, _planted_bug, tmp_path):
        corpus_dir = tmp_path / "corpus"
        config = FuzzConfig(
            seed=0,
            budget=20,
            profile="small",
            oracles=tuple(resolve_oracles(["baseline", "offline"])),
            corpus_dir=str(corpus_dir),
            stop_on_divergence=True,
        )
        report, snapshot = _campaign(config)
        assert not report.ok, "planted solver bug went undetected"
        verdicts = [d for d in report.divergences if d.kind == "verdict"]
        assert verdicts, [d.kind for d in report.divergences]
        finding = verdicts[0]
        assert finding.minimized is not None
        stats = finding.minimize_stats
        assert stats is not None
        assert stats.functions_after <= 5, (
            f"minimizer left {stats.functions_after} functions"
        )
        assert finding.corpus_id is not None
        assert (corpus_dir / f"{finding.corpus_id}.rs").exists()
        assert _counter(snapshot, "fuzz.divergences.verdict") >= 1
        assert _counter(snapshot, "fuzz.minimize.runs") >= 1
        assert _counter(snapshot, "fuzz.corpus.writes") >= 1

    def test_clean_run_finds_nothing_on_same_seeds(self):
        config = FuzzConfig(
            seed=0,
            budget=5,
            profile="small",
            oracles=tuple(resolve_oracles(["baseline", "offline"])),
        )
        report, _ = _campaign(config)
        assert report.ok, [d.detail for d in report.divergences]
