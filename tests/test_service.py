"""The verification service: sessions, result cache, scheduler, API, CLI."""

import json

import pytest

from repro.core import FluxError, verify_source
from repro.core.pipeline import FunctionResult, VerificationResult
from repro.service import (
    VerifyJob,
    VerifySession,
    verify_job,
    verify_jobs,
)
from repro.service import verify_source as service_verify_source
from repro.service.cli import main as cli_main
from repro.smt import AnswerCache, SmtContext, use_context
from repro.smt.result import SatResult, SolverAnswer


INC = """
#[flux::sig(fn(i32[@x]) -> i32{v: v > x})]
fn inc(x: i32) -> i32 { x + 1 }
"""

INC2 = """
#[flux::sig(fn(i32[@x]) -> i32{v: v > x})]
fn inc2(x: i32) -> i32 { inc(inc(x)) }
"""

SUM = """
#[flux::sig(fn(usize[@n]) -> usize[n])]
fn fill_len(n: usize) -> usize {
    let mut v = RVec::new();
    let mut i = 0;
    while i < n {
        v.push(i);
        i += 1;
    }
    v.len()
}
"""

BAD = """
#[flux::sig(fn(i32[@x]) -> i32[x])]
fn bad(x: i32) -> i32 { x + 1 }
"""


# ---------------------------------------------------------------------------
# The SMT answer cache (satellite: LRU instead of stop-inserting)
# ---------------------------------------------------------------------------


def _answer() -> SolverAnswer:
    return SolverAnswer(result=SatResult.UNSAT)


class TestAnswerCache:
    def test_hit_and_miss_counts(self):
        cache = AnswerCache(limit=4)
        assert cache.get("a") is None
        cache.put("a", _answer())
        assert cache.get("a") is not None
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_is_lru_not_stop_inserting(self):
        cache = AnswerCache(limit=2)
        cache.put("a", _answer())
        cache.put("b", _answer())
        cache.get("a")  # "a" is now most recently used
        cache.put("c", _answer())  # evicts "b", the LRU entry
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.get("b") is None
        assert len(cache) == 2

    def test_contexts_isolate_caches(self):
        ctx = SmtContext()
        with use_context(ctx):
            verify_source(INC)
        assert ctx.stats.queries > 0
        assert len(ctx.cache) > 0
        other = SmtContext()
        assert other.stats.queries == 0 and len(other.cache) == 0


# ---------------------------------------------------------------------------
# VerificationResult lookups and duplicate detection (pipeline satellites)
# ---------------------------------------------------------------------------


class TestVerificationResult:
    def test_function_lookup(self):
        result = VerificationResult()
        result.add(FunctionResult(name="f", ok=True))
        result.add(FunctionResult(name="g", ok=False))
        assert result.function("g").ok is False
        with pytest.raises(KeyError):
            result.function("missing")

    def test_function_lookup_after_direct_mutation(self):
        result = VerificationResult()
        result.functions.append(FunctionResult(name="f", ok=True))
        assert result.function("f").ok is True

    def test_function_lookup_after_same_length_replacement(self):
        result = VerificationResult()
        result.add(FunctionResult(name="f", ok=True))
        result.add(FunctionResult(name="g", ok=True))
        result.functions[0] = FunctionResult(name="h", ok=False)
        assert result.function("h").ok is False
        with pytest.raises(KeyError):
            result.function("f")

    def test_duplicate_function_names_rejected(self):
        with pytest.raises(FluxError, match="duplicate function.*inc"):
            verify_source(INC, extra_sources=[INC])

    def test_bodyless_declaration_plus_definition_is_not_a_duplicate(self):
        declaration = """
        #[flux::sig(fn(i32[@x]) -> i32{v: v > x})]
        fn inc(x: i32) -> i32;
        """
        result = verify_source(INC2, extra_sources=[declaration, INC])
        assert result.ok
        # First match wins on the duplicate name, as the old scan did.
        assert result.function("inc").trusted is True
        # Same through the service, in either order: the scheduler must pick
        # the bodied definition, not the declaration that shadows it.
        for sources in ([declaration, INC], [INC, declaration]):
            report = verify_job(
                VerifyJob(source=INC2, extra_sources=tuple(sources)),
                VerifySession(),
            )
            assert report.error is None and report.ok

    def test_service_preserves_core_exception_types(self):
        from repro.lang import ParseError

        with pytest.raises(ParseError):
            service_verify_source("fn broken(", session=VerifySession())

    def test_deep_call_chains_do_not_overflow_the_scheduler(self):
        depth = 1200
        parts = [
            """
            #[flux::sig(fn(i32[@x]) -> i32{v: v > x})]
            fn f0(x: i32) -> i32 { x + 1 }
            """
        ]
        for i in range(1, depth):
            parts.append(
                f"""
                #[flux::sig(fn(i32[@x]) -> i32{{v: v > x}})]
                fn f{i}(x: i32) -> i32 {{ f{i - 1}(x) + 1 }}
                """
            )
        # Callers first, so the scheduler has to chase the chain down.
        source = "\n".join(reversed(parts))
        report = verify_job(VerifyJob(source=source), VerifySession())
        assert report.error is None
        assert len(report.functions) == depth
        assert report.ok

    def test_duplicate_reported_in_service_job(self):
        report = verify_job(
            VerifyJob(source=INC, extra_sources=(INC,)), VerifySession()
        )
        assert not report.ok
        assert "duplicate" in report.error


# ---------------------------------------------------------------------------
# Result cache: hit / miss / invalidation
# ---------------------------------------------------------------------------


class TestResultCache:
    def test_cold_then_warm(self):
        session = VerifySession()
        cold = service_verify_source(INC + INC2 + SUM, session=session)
        assert cold.ok
        assert session.cache.hits == 0 and session.cache.misses == 3
        queries_after_cold = session.stats.queries

        warm = service_verify_source(INC + INC2 + SUM, session=session)
        assert warm.ok
        assert session.cache.hits == 3, "warm run must be served from cache"
        assert session.stats.queries == queries_after_cold, "no SMT work on warm run"
        assert [fn.name for fn in warm.functions] == [fn.name for fn in cold.functions]

    def test_editing_a_body_only_reverifies_that_function(self):
        session = VerifySession()
        service_verify_source(INC + INC2 + SUM, session=session)
        # New body for inc, same signature: inc2 still depends only on the
        # (unchanged) signature, so only inc itself re-verifies.
        edited_inc = """
        #[flux::sig(fn(i32[@x]) -> i32{v: v > x})]
        fn inc(x: i32) -> i32 { x + 2 }
        """
        report = verify_job(
            VerifyJob(source=edited_inc + INC2 + SUM), session
        )
        assert report.ok
        assert report.cache_hits == 2  # inc2 and fill_len
        assert report.cache_misses == 1  # the edited inc
        cached = {fn.name: fn.cached for fn in report.functions}
        assert cached == {"inc": False, "inc2": True, "fill_len": True}

    def test_editing_a_signature_reverifies_dependents(self):
        session = VerifySession()
        service_verify_source(INC + INC2 + SUM, session=session)
        # Stronger signature for inc: inc's callers must be re-checked too;
        # the unrelated fill_len stays cached.
        edited_inc = """
        #[flux::sig(fn(i32[@x]) -> i32{v: v == x + 1})]
        fn inc(x: i32) -> i32 { x + 1 }
        """
        report = verify_job(
            VerifyJob(source=edited_inc + INC2 + SUM), session
        )
        assert report.ok
        cached = {fn.name: fn.cached for fn in report.functions}
        assert cached == {"inc": False, "inc2": False, "fill_len": True}

    def test_shuffling_unrelated_code_keeps_cache_valid(self):
        session = VerifySession()
        service_verify_source(INC + SUM, session=session)
        report = verify_job(VerifyJob(source=SUM + INC), session)
        assert report.cache_hits == 2 and report.cache_misses == 0

    def test_failing_results_are_cached_too(self):
        session = VerifySession()
        first = service_verify_source(BAD, session=session)
        assert not first.ok
        second = service_verify_source(BAD, session=session)
        assert not second.ok
        assert session.cache.hits == 1
        assert [str(d) for d in second.diagnostics] == [
            str(d) for d in first.diagnostics
        ]

    def test_no_cache_disables_reuse(self):
        session = VerifySession(use_cache=False)
        service_verify_source(INC, session=session)
        service_verify_source(INC, session=session)
        assert session.cache.hits == 0 and session.cache.misses == 0

    def test_disk_persistence_across_sessions(self, tmp_path):
        cache_dir = str(tmp_path / "flux-cache")
        first = VerifySession(cache_dir=cache_dir)
        service_verify_source(INC + INC2, session=first)
        assert first.cache.misses == 2

        fresh = VerifySession(cache_dir=cache_dir)
        result = service_verify_source(INC + INC2, session=fresh)
        assert result.ok
        assert fresh.cache.hits == 2 and fresh.cache.misses == 0

    def test_editing_adt_reached_only_via_callee_signature_invalidates(self):
        # ``use_mk`` never names S itself — it only calls ``mk() -> S`` — but
        # S's refined field definition still shapes its obligations, so
        # editing S must invalidate ``use_mk``'s cached verdict.
        def program(field_type):
            return f"""
            #[flux::refined_by(n: int)]
            struct S {{
                #[flux::field({field_type})]
                val: i32,
            }}

            #[flux::sig(fn() -> S[3])]
            fn mk() -> S {{ S {{ val: 3 }} }}

            #[flux::sig(fn() -> i32[3])]
            fn use_mk() -> i32 {{
                let s = mk();
                s.val
            }}
            """

        session = VerifySession()
        first = service_verify_source(program("i32[n]"), session=session)
        assert first.ok
        # Weaken the field: val is now only known to be >= n, so ``use_mk``
        # can no longer return exactly i32[3].  A stale cache would keep
        # serving the old "ok" verdict.
        second = service_verify_source(program("i32{v: v >= n}"), session=session)
        use_mk = second.function("use_mk")
        assert not use_mk.ok, "stale cached verdict served after editing struct S"

    def test_trusted_functions_bypass_the_cache(self):
        trusted = """
        #[flux::trusted]
        #[flux::sig(fn(i32[@x]) -> i32[x + 1])]
        fn magic(x: i32) -> i32 { x + 1 }
        """
        session = VerifySession()
        report = verify_job(VerifyJob(source=trusted + INC), session)
        assert report.ok
        statuses = {fn.name: fn.status for fn in report.functions}
        assert statuses == {"magic": "trusted", "inc": "ok"}
        assert report.cache_misses == 1  # only inc touches the cache


# ---------------------------------------------------------------------------
# Scheduler: parallel mode equals serial mode
# ---------------------------------------------------------------------------


class TestScheduler:
    PROGRAM = INC + INC2 + SUM + BAD

    def test_parallel_diagnostics_match_serial(self):
        serial = service_verify_source(
            self.PROGRAM, session=VerifySession(jobs=1, use_cache=False)
        )
        parallel = service_verify_source(
            self.PROGRAM, session=VerifySession(jobs=2, use_cache=False)
        )
        assert [fn.name for fn in parallel.functions] == [
            fn.name for fn in serial.functions
        ]
        assert [(fn.name, fn.ok, fn.trusted) for fn in parallel.functions] == [
            (fn.name, fn.ok, fn.trusted) for fn in serial.functions
        ]
        assert [
            (d.function, d.tag, d.message) for d in parallel.diagnostics
        ] == [(d.function, d.tag, d.message) for d in serial.diagnostics]

    def test_parallel_populates_cache_and_session_stats(self):
        session = VerifySession(jobs=2)
        service_verify_source(self.PROGRAM, session=session)
        assert session.stats.queries > 0  # worker deltas merged back
        warm = service_verify_source(self.PROGRAM, session=session)
        assert session.cache.hits == 4
        assert not warm.ok  # BAD stays rejected from cache


# ---------------------------------------------------------------------------
# Batch API
# ---------------------------------------------------------------------------


class TestBatchApi:
    def test_jobs_share_one_cache(self):
        report = verify_jobs(
            [VerifyJob(source=INC, name="a"), VerifyJob(source=INC + INC2, name="b")]
        )
        assert report.ok
        by_name = {job.name: job for job in report.jobs}
        assert by_name["a"].cache_misses == 1
        # Job b re-uses a's result for inc and only checks inc2.
        assert by_name["b"].cache_hits == 1 and by_name["b"].cache_misses == 1
        assert report.cache_hits == 1 and report.cache_misses == 2
        assert report.smt["queries"] > 0

    def test_report_round_trips_through_json(self):
        report = verify_jobs([VerifyJob(source=BAD, name="bad")])
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is False
        (job,) = payload["jobs"]
        (fn,) = job["functions"]
        assert fn["name"] == "bad" and fn["status"] == "error"
        assert fn["diagnostics"] and "refinement error" in fn["diagnostics"][0]


# ---------------------------------------------------------------------------
# CLI (python -m repro)
# ---------------------------------------------------------------------------


class TestCli:
    def _write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    def test_json_report_golden(self, tmp_path, capsys):
        prog = self._write(tmp_path, "prog.rs", INC + INC2)
        exit_code = cli_main([prog])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        # Golden structure: stable keys and values (timings vary).
        assert payload["ok"] is True
        assert payload["cache_hits"] == 0 and payload["cache_misses"] == 2
        (job,) = payload["jobs"]
        assert job["name"] == "prog.rs" and job["ok"] is True
        assert [fn["name"] for fn in job["functions"]] == ["inc", "inc2"]
        assert all(
            fn["status"] == "ok" and fn["cached"] is False and fn["diagnostics"] == []
            for fn in job["functions"]
        )
        assert payload["smt"]["queries"] >= 4

    def test_failure_sets_exit_code(self, tmp_path, capsys):
        prog = self._write(tmp_path, "bad.rs", BAD)
        exit_code = cli_main([prog])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert payload["ok"] is False

    def test_cache_dir_warms_across_invocations(self, tmp_path, capsys):
        prog = self._write(tmp_path, "prog.rs", INC + INC2)
        cache_dir = str(tmp_path / "cache")
        assert cli_main(["--cache-dir", cache_dir, prog]) == 0
        capsys.readouterr()
        assert cli_main(["--cache-dir", cache_dir, prog]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache_hits"] == 2 and payload["cache_misses"] == 0

    def test_only_and_lib_flags(self, tmp_path, capsys):
        lib = self._write(tmp_path, "lib.rs", INC)
        prog = self._write(tmp_path, "prog.rs", INC2)
        exit_code = cli_main(["--lib", lib, "--only", "inc2", prog])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        (job,) = payload["jobs"]
        assert [fn["name"] for fn in job["functions"]] == ["inc2"]

    def test_summary_output(self, tmp_path, capsys):
        prog = self._write(tmp_path, "prog.rs", INC)
        exit_code = cli_main(["--summary", prog])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "prog.rs: ok" in out and "inc" in out

    def test_jobs_flag_matches_serial(self, tmp_path, capsys):
        prog = self._write(tmp_path, "prog.rs", INC + INC2 + BAD)
        assert cli_main(["--no-cache", prog]) == 1
        serial = json.loads(capsys.readouterr().out)
        assert cli_main(["--no-cache", "--jobs", "2", prog]) == 1
        parallel = json.loads(capsys.readouterr().out)
        strip = lambda payload: [
            {k: v for k, v in fn.items() if k != "time"}
            for job in payload["jobs"]
            for fn in job["functions"]
        ]
        assert strip(serial) == strip(parallel)


# ---------------------------------------------------------------------------
# Bench integration: run_flux reports cache hits when given a session
# ---------------------------------------------------------------------------


def test_bench_run_flux_with_session_reports_cache_stats():
    from repro.bench.suite import all_benchmarks

    case = next(c for c in all_benchmarks() if c.name == "rmat")
    session = VerifySession()
    cold = case.run_flux(session=session)
    warm = case.run_flux(session=session)
    assert cold.cache_misses > 0 and cold.cache_hits == 0
    assert warm.cache_hits == cold.cache_misses and warm.cache_misses == 0
    assert warm.verified == cold.verified
