"""The regression corpus: write/load round-trips and the forever-replay.

The final test replays every committed entry under ``tests/corpus/`` —
that is the "worst cases never regress" gate the fuzzer feeds.
"""

import json
import os

import pytest

from repro.fuzz.corpus import load_corpus, replay_entry, write_entry
from repro.fuzz.driver import Divergence

REPO_CORPUS = os.path.join(os.path.dirname(__file__), "corpus")


def _divergence(source, kind="verdict", minimized=None):
    return Divergence(
        kind=kind,
        seed=123,
        profile="small",
        crate_index=7,
        oracle="offline",
        detail="f: status baseline='error' vs offline='ok'",
        source=source,
        minimized=minimized,
    )


class TestWriteLoad:
    def test_round_trip(self, tmp_path):
        entry_id = write_entry(str(tmp_path), _divergence("fn main() { }\n"))
        entries = load_corpus(str(tmp_path))
        assert [e.entry_id for e in entries] == [entry_id]
        entry = entries[0]
        assert entry.source == "fn main() { }\n"
        assert entry.meta["kind"] == "verdict"
        assert entry.meta["seed"] == 123
        assert entry.meta["oracle"] == "offline"

    def test_minimized_source_wins(self, tmp_path):
        write_entry(
            str(tmp_path), _divergence("fn big() { }\n", minimized="fn small() { }\n")
        )
        (entry,) = load_corpus(str(tmp_path))
        assert entry.source == "fn small() { }\n"
        assert entry.meta["minimized"] is True

    def test_content_addressed_ids_are_idempotent(self, tmp_path):
        first = write_entry(str(tmp_path), _divergence("fn f() { }\n"))
        second = write_entry(str(tmp_path), _divergence("fn f() { }\n"))
        assert first == second
        assert len([n for n in os.listdir(tmp_path) if n.endswith(".rs")]) == 1

    def test_injection_env_is_recorded(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_INJECT_THEORY_BUG", "strict-bounds")
        entry_id = write_entry(str(tmp_path), _divergence("fn g() { }\n"))
        meta = json.load(open(tmp_path / f"{entry_id}.json"))
        assert meta["env"] == {"REPRO_INJECT_THEORY_BUG": "strict-bounds"}

    def test_missing_directory_loads_empty(self, tmp_path):
        assert load_corpus(str(tmp_path / "nope")) == []


class TestReplay:
    def test_agreeing_entry_replays_clean(self, tmp_path):
        source = (
            "#[flux::sig(fn ( x : i32 [ @ x ] ) -> i32 [ x + 1 ])]\n"
            "fn inc(x: i32) -> i32 {\n    x + 1\n}\n"
        )
        write_entry(str(tmp_path), _divergence(source))
        (entry,) = load_corpus(str(tmp_path))
        assert replay_entry(entry) is None

    def test_repo_corpus_is_well_formed(self):
        entries = load_corpus(REPO_CORPUS)
        assert entries, "committed corpus must not be empty"
        for entry in entries:
            assert entry.meta.get("id") == entry.entry_id
            assert entry.meta.get("kind") in {"verdict", "crash", "expectation"}
            assert len(entry.replay_oracles) >= 2


@pytest.mark.parametrize(
    "entry",
    load_corpus(REPO_CORPUS),
    ids=lambda entry: entry.entry_id,
)
def test_repo_corpus_entry_replays_clean(entry):
    """Every committed worst case stays fixed, under every replay oracle."""
    mismatch = replay_entry(entry)
    assert mismatch is None, mismatch
