"""Tests for the MiniRust lexer and parser."""

import pytest

from repro.lang import ast, parse_program, tokenize
from repro.lang.lexer import LexError
from repro.lang.parser import ParseError


class TestLexer:
    def test_simple_tokens(self):
        tokens = tokenize("fn main() { let x = 1 + 2; }")
        kinds = [t.kind for t in tokens]
        assert kinds[0] == "keyword"
        assert kinds[-1] == "eof"

    def test_operators_maximal_munch(self):
        tokens = [t.text for t in tokenize("a <= b && c -> d :: e")][:-1]
        assert "<=" in tokens and "&&" in tokens and "->" in tokens and "::" in tokens

    def test_float_literal(self):
        tokens = tokenize("0.5 + 1")
        assert tokens[0].kind == "float"
        assert tokens[0].text == "0.5"

    def test_comments_skipped(self):
        tokens = tokenize("x // line comment\n/* block */ y")
        texts = [t.text for t in tokens if t.kind != "eof"]
        assert texts == ["x", "y"]

    def test_line_tracking(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]

    def test_attribute_token(self):
        tokens = tokenize("#[flux::sig(fn())]")
        assert tokens[0].text == "#["

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("let x = $;")

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")


SIMPLE_FN = """
#[flux::sig(fn(i32[@n]) -> bool[n > 0])]
fn is_pos(n: i32) -> bool {
    if n > 0 { true } else { false }
}
"""


class TestParser:
    def test_simple_function(self):
        program = parse_program(SIMPLE_FN)
        fn = program.function("is_pos")
        assert fn.params[0].name == "n"
        assert isinstance(fn.params[0].ty, ast.TyName)
        assert fn.attrs[0].name == "flux::sig"
        assert isinstance(fn.body.tail, ast.IfExpr)

    def test_while_loop_and_let(self):
        source = """
        fn count(n: usize) -> usize {
            let mut i = 0;
            while i < n {
                i += 1;
            }
            i
        }
        """
        fn = parse_program(source).function("count")
        stmts = fn.body.stmts
        assert isinstance(stmts[0], ast.LetStmt)
        assert stmts[0].mutable
        assert isinstance(stmts[1], ast.WhileStmt)
        assert isinstance(fn.body.tail, ast.VarExpr)

    def test_compound_assignment(self):
        source = "fn f() { let mut x = 0; x += 1; x -= 2; }"
        fn = parse_program(source).function("f")
        assign = fn.body.stmts[1]
        assert isinstance(assign, ast.AssignStmt)
        assert assign.op == "+"

    def test_method_calls_and_paths(self):
        source = """
        fn g() -> usize {
            let mut v = RVec::new();
            v.push(1);
            v.len()
        }
        """
        fn = parse_program(source).function("g")
        let_stmt = fn.body.stmts[0]
        assert isinstance(let_stmt.init, ast.CallExpr)
        assert let_stmt.init.func == "RVec::new"
        push = fn.body.stmts[1].expr
        assert isinstance(push, ast.MethodCallExpr)
        assert push.method == "push"
        assert isinstance(fn.body.tail, ast.MethodCallExpr)

    def test_references_and_deref(self):
        source = """
        fn h(x: &mut i32) {
            let y = *x;
            *x = y + 1;
        }
        """
        fn = parse_program(source).function("h")
        assert isinstance(fn.params[0].ty, ast.TyRef)
        assert fn.params[0].ty.mutable
        let_stmt = fn.body.stmts[0]
        assert isinstance(let_stmt.init, ast.DerefExpr)
        assign = fn.body.stmts[1]
        assert isinstance(assign.place, ast.DerefExpr)

    def test_borrow_expressions(self):
        source = "fn f() { let mut x = 0; decr(&mut x); read(&x); }"
        fn = parse_program(source).function("f")
        call = fn.body.stmts[1].expr
        assert isinstance(call.args[0], ast.BorrowExpr)
        assert call.args[0].mutable
        call2 = fn.body.stmts[2].expr
        assert not call2.args[0].mutable

    def test_if_as_expression(self):
        source = "fn f(z: bool) -> i32 { let r = if z { 1 } else { 2 }; r }"
        fn = parse_program(source).function("f")
        let_stmt = fn.body.stmts[0]
        assert isinstance(let_stmt.init, ast.IfExpr)

    def test_else_if_chain(self):
        source = "fn f(x: i32) -> i32 { if x > 0 { 1 } else if x < 0 { 2 } else { 3 } }"
        fn = parse_program(source).function("f")
        outer = fn.body.tail
        assert isinstance(outer, ast.IfExpr)
        assert isinstance(outer.else_block.tail, ast.IfExpr)

    def test_struct_definition_with_attrs(self):
        source = """
        #[flux::refined_by(size: int)]
        struct VecWrapper {
            #[flux::field(RVec<i32>[size])]
            items: RVec<i32>,
        }
        """
        program = parse_program(source)
        struct = program.structs[0]
        assert struct.name == "VecWrapper"
        assert struct.attrs[0].name == "flux::refined_by"
        assert struct.fields[0].attrs[0].name == "flux::field"

    def test_enum_and_match(self):
        source = """
        enum List<T> {
            Nil,
            Cons(T, Box<List<T>>),
        }

        impl<T> List<T> {
            fn len(&self) -> usize {
                match self {
                    List::Cons(_, tl) => 1 + tl.len(),
                    List::Nil => 0,
                }
            }
        }
        """
        program = parse_program(source)
        assert program.enums[0].variants[0].name == "Nil"
        assert program.enums[0].variants[1].fields
        fn = program.function("List::len")
        assert fn.params[0].name == "self"
        assert isinstance(fn.body.tail, ast.MatchExpr)

    def test_impl_block_method_naming(self):
        source = """
        struct Counter { value: i32 }
        impl Counter {
            fn increment(&mut self) { self.value += 1; }
        }
        """
        program = parse_program(source)
        fn = program.function("Counter::increment")
        assert isinstance(fn.params[0].ty, ast.TyRef)

    def test_macro_statement(self):
        source = "fn f(n: usize) { let mut i = 0; while i < n { body_invariant!(i <= n); i += 1; } }"
        fn = parse_program(source).function("f")
        loop_stmt = fn.body.stmts[1]
        macro = loop_stmt.body.stmts[0]
        assert isinstance(macro, ast.MacroStmt)
        assert macro.name == "body_invariant"
        assert "<=" in macro.tokens

    def test_prusti_attributes(self):
        source = """
        #[requires(idx < self.len())]
        #[ensures(self.len() == old(self.len()))]
        fn store(self: &mut RVec<i32>, idx: usize, value: i32) { }
        """
        fn = parse_program(source).function("store")
        assert [a.name for a in fn.attrs] == ["requires", "ensures"]

    def test_generic_function(self):
        source = "fn swap_wrap<T>(x: &mut T, y: &mut T) { swap(x, y); }"
        fn = parse_program(source).function("swap_wrap")
        assert fn.generics == ("T",)

    def test_struct_literal(self):
        source = "fn mk() -> Point { Point { x: 1, y: 2 } }"
        fn = parse_program(source).function("mk")
        assert isinstance(fn.body.tail, ast.StructLit)

    def test_no_struct_literal_in_condition(self):
        source = "fn f(p: Point) { while p { } }"
        fn = parse_program(source).function("f")
        assert isinstance(fn.body.stmts[0], ast.WhileStmt)

    def test_parse_error_reports_line(self):
        with pytest.raises(ParseError, match="line"):
            parse_program("fn broken( { }")

    def test_cast_expression(self):
        source = "fn f(x: i32) -> usize { x as usize }"
        fn = parse_program(source).function("f")
        assert isinstance(fn.body.tail, ast.CastExpr)

    def test_nested_generics(self):
        source = "fn f(m: &mut RVec<RVec<f32>>) { }"
        fn = parse_program(source).function("f")
        inner = fn.params[0].ty.inner
        assert inner.name == "RVec"
        assert inner.args[0].name == "RVec"
