"""The verification daemon: protocol, queue/quota edge cases, HTTP surface,
graceful drain, worker-subprocess isolation, and the CLI thin-client
fallback."""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro import faults
from repro.daemon import client
from repro.daemon.protocol import DEFAULT_TENANT, JobRequest, ProtocolError, error_payload
from repro.daemon.queue import JobQueue
from repro.daemon.quotas import QuotaExceeded, TenantQuotas
from repro.daemon.testing import run_daemon
from repro.daemon.workers import WorkerPool
from repro.service.cli import main as cli_main

INC = """
#[flux::sig(fn(i32[@x]) -> i32{v: v > x})]
fn inc(x: i32) -> i32 { x + 1 }
"""

BAD = """
#[flux::sig(fn(i32[@x]) -> i32[x])]
fn bad(x: i32) -> i32 { x + 1 }
"""

FILL = """
#[flux::sig(fn(usize[@n]) -> usize[n])]
fn fill_len(n: usize) -> usize {
    let mut v = RVec::new();
    let mut i = 0;
    while i < n {
        v.push(i);
        i += 1;
    }
    v.len()
}
"""


# ---------------------------------------------------------------------------
# Protocol units
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_request_roundtrip(self):
        request = JobRequest.from_dict(
            {"source": INC, "name": "n", "extra_sources": ["lib"], "only": ["inc"]}
        )
        assert request.tenant == DEFAULT_TENANT
        again = JobRequest.from_dict(request.to_dict())
        assert again == request

    def test_validation_errors(self):
        with pytest.raises(ProtocolError):
            JobRequest.from_dict([])
        with pytest.raises(ProtocolError):
            JobRequest.from_dict({})
        with pytest.raises(ProtocolError):
            JobRequest.from_dict({"source": ""})
        with pytest.raises(ProtocolError):
            JobRequest.from_dict({"source": INC, "only": "inc"})
        with pytest.raises(ProtocolError):
            JobRequest.from_dict({"source": INC, "bogus": 1})

    def test_content_key_identity(self):
        a = JobRequest(source=INC, name="a")
        assert a.content_key() == JobRequest(source=INC, name="a").content_key()
        # Any content-bearing field participates in the key.
        assert a.content_key() != JobRequest(source=BAD, name="a").content_key()
        assert a.content_key() != JobRequest(source=INC, name="b").content_key()
        assert a.content_key() != JobRequest(source=INC, name="a", tenant="t").content_key()
        assert (
            a.content_key()
            != JobRequest(source=INC, name="a", only=("inc",)).content_key()
        )

    def test_error_payload_shape(self):
        payload = error_payload("TIMEOUT", "too slow", job="job-1")
        assert payload == {
            "error": {"kind": "TIMEOUT", "message": "too slow", "detail": {"job": "job-1"}}
        }


class TestQuotas:
    def test_limits_and_release(self):
        quotas = TenantQuotas(default_limit=2, limits={"big": 0})
        quotas.acquire("a")
        quotas.acquire("a")
        with pytest.raises(QuotaExceeded) as excinfo:
            quotas.acquire("a")
        assert excinfo.value.tenant == "a"
        assert excinfo.value.limit == 2
        quotas.release("a")
        quotas.acquire("a")  # slot freed
        for _ in range(10):  # limit 0 means unlimited
            quotas.acquire("big")
        assert quotas.snapshot() == {"a": 2, "big": 10}


# ---------------------------------------------------------------------------
# Queue/worker-pool units (driven directly on an asyncio loop)
# ---------------------------------------------------------------------------


def _fresh_pool() -> WorkerPool:
    return WorkerPool({"cache_dir": None, "session_jobs": 1}, size=1)


def _plan(*specs: faults.FaultSpec) -> faults.FaultPlan:
    return faults.FaultPlan(seed=0, specs=specs)


class TestQueueWorkers:
    def test_timeout_kills_and_replaces_worker(self):
        # A job hung past its budget fails with TIMEOUT and its worker is
        # killed — no orphan thread, no poisoned session — while the pool
        # stays warm for the next job, which verifies untouched.
        plan = _plan(
            faults.FaultSpec(site="daemon.job", kind="hang", match="slow", delay=30.0)
        )

        async def scenario():
            pool = _fresh_pool()
            queue = JobQueue(pool, workers=1, job_timeout=0.3)
            queue.start()
            slow, _ = queue.submit(JobRequest(source=INC, name="slow"))
            while slow.active:
                await asyncio.sleep(0.01)
            assert slow.state == "failed"
            assert slow.error["kind"] == "TIMEOUT"
            assert pool.retired_total == 1
            assert pool.warm == 1
            fast, _ = queue.submit(JobRequest(source=INC, name="fast"))
            while fast.active:
                await asyncio.sleep(0.01)
            assert fast.state == "done"
            assert fast.report["ok"] is True
            await queue.stop()
            assert pool.warm == 0

        with faults.inject_faults(plan):
            asyncio.run(scenario())

    def test_crashed_job_retried_on_fresh_worker(self):
        # ``attempts=1`` fires the crash only on the first attempt of the
        # job: the worker SIGKILLs itself, the queue retires it and re-runs
        # the job on the replacement, which succeeds.
        plan = _plan(
            faults.FaultSpec(site="daemon.job", kind="crash", match="flaky", attempts=1)
        )

        async def scenario():
            pool = _fresh_pool()
            queue = JobQueue(pool, workers=1, job_timeout=None)
            queue.start()
            record, _ = queue.submit(JobRequest(source=INC, name="flaky"))
            while record.active:
                await asyncio.sleep(0.01)
            assert record.state == "done"
            assert record.report["ok"] is True
            assert record.meta["attempts"] == 2
            assert pool.retired_total == 1
            await queue.stop()

        with faults.inject_faults(plan):
            asyncio.run(scenario())

    def test_persistent_crash_exhausts_retries(self):
        plan = _plan(
            faults.FaultSpec(site="daemon.job", kind="crash", match="doomed")
        )

        async def scenario():
            pool = _fresh_pool()
            queue = JobQueue(pool, workers=1, job_timeout=None, job_retries=1)
            queue.start()
            record, _ = queue.submit(JobRequest(source=INC, name="doomed"))
            while record.active:
                await asyncio.sleep(0.01)
            assert record.state == "failed"
            assert record.error["kind"] == "WORKER_CRASHED"
            assert record.meta["attempts"] == 2  # first run + one retry
            assert pool.retired_total == 2
            await queue.stop()

        with faults.inject_faults(plan):
            asyncio.run(scenario())

    def test_stop_abandons_pending_backlog(self):
        plan = _plan(
            faults.FaultSpec(site="daemon.job", kind="hang", match="inflight", delay=0.5)
        )

        async def scenario():
            pool = _fresh_pool()
            queue = JobQueue(pool, workers=1, job_timeout=None)
            queue.start()
            first, _ = queue.submit(JobRequest(source=INC, name="inflight"))
            second, _ = queue.submit(JobRequest(source=INC, name="backlog"))
            while first.state != "running":
                await asyncio.sleep(0.01)
            assert second.state == "queued"
            stopper = asyncio.ensure_future(queue.stop())
            await asyncio.sleep(0.05)
            # The backlog is failed immediately — shutdown does not run it.
            assert second.state == "failed"
            assert second.error["kind"] == "SHUTTING_DOWN"
            assert not stopper.done()  # bounded by the one in-flight job
            await asyncio.wait_for(stopper, timeout=10.0)
            assert first.state == "done"
            assert queue.quotas.snapshot() == {}  # every slot released

        with faults.inject_faults(plan):
            asyncio.run(scenario())


# ---------------------------------------------------------------------------
# End-to-end over HTTP
# ---------------------------------------------------------------------------


class TestDaemonEndToEnd:
    def test_verify_ok_and_failing(self):
        with run_daemon() as daemon:
            ok = client.verify(daemon.url, INC, name="good")
            assert ok["state"] == "done"
            assert ok["report"]["ok"] is True
            assert [fn["status"] for fn in ok["report"]["functions"]] == ["ok"]

            bad = client.verify(daemon.url, BAD, name="bad")
            assert bad["state"] == "done"  # verification *ran*; verdict is False
            assert bad["report"]["ok"] is False
            assert bad["report"]["functions"][0]["diagnostics"]

    def test_duplicate_submission_returns_same_job_id(self):
        with run_daemon() as daemon:
            first = client.submit(daemon.url, INC, name="dup")
            record = client.wait(daemon.url, first)
            assert record["state"] == "done"
            # Resubmitting identical content — even after completion —
            # attaches to the original job instead of re-verifying.
            second = client.submit(daemon.url, INC, name="dup")
            assert second == first
            assert client.status(daemon.url, first)["duplicates"] == 1
            # Different name (or tenant, or sources) is a different job.
            third = client.submit(daemon.url, INC, name="dup2")
            assert third != first

    def test_quota_exceeded_is_structured_429(self):
        with run_daemon(workers=0, tenant_quota=1, drain_timeout=0.2) as daemon:
            client.submit(daemon.url, INC, name="first", tenant="acme")
            with pytest.raises(client.DaemonError) as excinfo:
                client.submit(daemon.url, BAD, name="second", tenant="acme")
            assert excinfo.value.http_status == 429
            assert excinfo.value.kind == "QUOTA_EXCEEDED"
            assert excinfo.value.detail["tenant"] == "acme"
            assert excinfo.value.detail["limit"] == 1
            # Another tenant still has its own quota.
            other = client.submit(daemon.url, BAD, name="second", tenant="other")
            assert other

    def test_queue_full_is_structured_503(self):
        with run_daemon(
            workers=0, queue_limit=1, tenant_quota=0, drain_timeout=0.2
        ) as daemon:
            client.submit(daemon.url, INC, name="first")
            with pytest.raises(client.DaemonError) as excinfo:
                client.submit(daemon.url, BAD, name="second")
            assert excinfo.value.http_status == 503
            assert excinfo.value.kind == "QUEUE_FULL"

    def test_job_timeout_is_structured_failure(self):
        with run_daemon(job_timeout=1e-6, drain_timeout=5.0) as daemon:
            job_id = client.submit(daemon.url, FILL, name="slow")
            record = client.wait(daemon.url, job_id)
            assert record["state"] == "failed"
            assert record["error"]["kind"] == "TIMEOUT"
            assert "report" not in record

    def test_failed_job_resubmission_readmits(self):
        with run_daemon(job_timeout=1e-6, drain_timeout=10.0) as daemon:
            first = client.submit(daemon.url, FILL, name="flaky")
            record = client.wait(daemon.url, first)
            assert record["state"] == "failed"
            # A failed record must not pin identical resubmissions to the
            # stale failure: lift the timeout and resubmit — a *new* job.
            daemon.daemon.queue.job_timeout = None
            second = client.submit(daemon.url, FILL, name="flaky")
            assert second != first
            done = client.wait(daemon.url, second)
            assert done["state"] == "done"
            assert done["report"]["ok"] is True
            # The old record stays readable until evicted.
            assert client.status(daemon.url, first)["state"] == "failed"
            # The timed-out job's worker was killed; the pool stays warm.
            health = client.healthz(daemon.url)
            assert health["workers"]["retired"] == 1
            assert health["workers"]["warm"] == 1
            exposition = client.metrics(daemon.url)
            assert "repro_daemon_sessions_retired_total 1" in exposition
            assert "repro_daemon_jobs_retried_total 1" in exposition

    def test_worker_pool_has_one_session_each(self):
        with run_daemon(workers=2) as daemon:
            health = client.healthz(daemon.url)
            assert health["queue"]["workers"] == 2
            assert health["workers"]["warm"] == 2
            a = client.submit(daemon.url, INC, name="a")
            b = client.submit(daemon.url, BAD, name="b")
            assert client.wait(daemon.url, a)["report"]["ok"] is True
            assert client.wait(daemon.url, b)["report"]["ok"] is False

    def test_unknown_job_is_404(self):
        with run_daemon() as daemon:
            with pytest.raises(client.DaemonError) as excinfo:
                client.status(daemon.url, "job-999999-cafebabe")
            assert excinfo.value.http_status == 404
            assert excinfo.value.kind == "NOT_FOUND"

    def test_bad_request_is_400(self):
        with run_daemon() as daemon:
            with pytest.raises(client.DaemonError) as excinfo:
                client._request(daemon.url, "/verify", payload={"name": "no-source"})
            assert excinfo.value.http_status == 400
            assert excinfo.value.kind == "BAD_REQUEST"
            with pytest.raises(client.DaemonError) as excinfo:
                client._request(daemon.url, "/nope", payload=None)
            assert excinfo.value.http_status == 404

    def test_draining_daemon_refuses_new_work(self):
        with run_daemon() as daemon:
            daemon.daemon.queue.stop_accepting()
            with pytest.raises(client.DaemonError) as excinfo:
                client.submit(daemon.url, INC, name="late")
            assert excinfo.value.http_status == 503
            assert excinfo.value.kind == "SHUTTING_DOWN"

    def test_healthz_and_metrics(self):
        with run_daemon() as daemon:
            health = client.healthz(daemon.url)
            assert health["ok"] is True
            assert health["state"] == "serving"
            assert health["queue"]["workers"] == 1

            client.verify(daemon.url, INC, name="warm")
            exposition = client.metrics(daemon.url)
            assert "repro_daemon_jobs_submitted_total 1" in exposition
            assert "repro_daemon_sessions_warm 1" in exposition
            assert "repro_daemon_queue_depth" in exposition
            assert "repro_daemon_cache_hit_ratio" in exposition
            # Solver counters from the warm session ride the same registry.
            assert "repro_smt_queries_" in exposition

    def test_shutdown_drains_in_flight_jobs(self):
        with run_daemon() as daemon:
            job_id = client.submit(daemon.url, FILL, name="inflight")
            handle = daemon
        # The context manager exit above performed the graceful shutdown;
        # the submitted job must have been drained to completion, not lost.
        record = handle.daemon.queue.get(job_id)
        assert record is not None
        assert record.state == "done"
        assert record.report is not None and record.report["ok"] is True
        assert handle.daemon.state == "stopped"

    def test_warm_session_serves_repeat_from_cache(self):
        with run_daemon() as daemon:
            first = client.verify(daemon.url, INC, name="one")
            assert first["report"]["cache_misses"] == 1
            # Same program under a different job name: re-verified through
            # the warm session, served by the function-result cache.
            second = client.verify(daemon.url, INC, name="two")
            assert second["report"]["cache_hits"] == 1
            assert second["report"]["cache_misses"] == 0


# ---------------------------------------------------------------------------
# Client error classification
# ---------------------------------------------------------------------------


class TestClientErrors:
    def test_slow_daemon_is_timeout_not_unavailable(self):
        # A socket that accepts the connection but never answers models a
        # busy-but-alive daemon: the client must raise a retryable TIMEOUT,
        # not DaemonUnavailable (which would trigger the in-process
        # fallback and duplicate work already running server-side).
        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        port = server.getsockname()[1]

        def accept_and_hang():
            try:
                conn, _ = server.accept()
                time.sleep(2.0)
                conn.close()
            except OSError:
                pass

        thread = threading.Thread(target=accept_and_hang, daemon=True)
        thread.start()
        try:
            with pytest.raises(client.DaemonError) as excinfo:
                client.healthz(f"http://127.0.0.1:{port}", timeout=0.2)
            assert not isinstance(excinfo.value, client.DaemonUnavailable)
            assert excinfo.value.kind == "TIMEOUT"
        finally:
            server.close()

    def test_refused_connection_is_unavailable(self):
        with pytest.raises(client.DaemonUnavailable):
            client.healthz("http://127.0.0.1:1", timeout=0.5)


# ---------------------------------------------------------------------------
# CLI thin client
# ---------------------------------------------------------------------------


class TestCliClient:
    def test_cli_uses_server_when_available(self, tmp_path, capsys):
        source_path = tmp_path / "inc.rs"
        source_path.write_text(INC)
        with run_daemon() as daemon:
            status = cli_main(["--server", daemon.url, str(source_path)])
            assert status == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["ok"] is True
            assert payload["server"] == daemon.url
            assert payload["jobs"][0]["functions"][0]["name"] == "inc"

    def test_cli_falls_back_when_no_daemon_listens(self, tmp_path, capsys):
        source_path = tmp_path / "inc.rs"
        source_path.write_text(INC)
        # Port 1 is never listening; the CLI must fall back in-process.
        status = cli_main(
            ["--server", "http://127.0.0.1:1", "--no-cache", str(source_path)]
        )
        captured = capsys.readouterr()
        assert status == 0
        assert "falling back to in-process verification" in captured.err
        payload = json.loads(captured.out)
        assert payload["ok"] is True
        assert "server" not in payload  # the in-process report shape

    def test_cli_reports_failing_program_through_server(self, tmp_path, capsys):
        source_path = tmp_path / "bad.rs"
        source_path.write_text(BAD)
        with run_daemon() as daemon:
            status = cli_main(["--server", daemon.url, str(source_path)])
            assert status == 1
            payload = json.loads(capsys.readouterr().out)
            assert payload["ok"] is False

    def test_cli_local_only_flags_bypass_server(self, tmp_path, capsys):
        source_path = tmp_path / "inc.rs"
        source_path.write_text(INC)
        status = cli_main(
            ["--server", "http://127.0.0.1:1", "--no-cache", "--stats", str(source_path)]
        )
        captured = capsys.readouterr()
        assert status == 0
        assert "--stats" in captured.err  # warned about local-only flag
        assert "session metrics" in captured.out
