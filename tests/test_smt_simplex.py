"""Unit tests for the exact simplex and the LIA branch-and-bound layer."""

from fractions import Fraction

import pytest

from repro.smt.lia import check_lia
from repro.smt.simplex import Constraint, DeltaRational, check_constraints


def C(coeffs, op, bound):
    return Constraint({k: Fraction(v) for k, v in coeffs.items()}, op, Fraction(bound))


class TestDeltaRational:
    def test_ordering_uses_infinitesimal(self):
        a = DeltaRational(Fraction(1), Fraction(0))
        b = DeltaRational(Fraction(1), Fraction(1))
        assert a < b
        assert b > a

    def test_arithmetic(self):
        a = DeltaRational(Fraction(1), Fraction(2))
        b = DeltaRational(Fraction(3), Fraction(-1))
        assert (a + b) == DeltaRational(Fraction(4), Fraction(1))
        assert (a - b) == DeltaRational(Fraction(-2), Fraction(3))
        assert a.scale(Fraction(2)) == DeltaRational(Fraction(2), Fraction(4))


class TestSimplexFeasibility:
    def test_trivial_sat(self):
        result = check_constraints([C({"x": 1}, "<=", 5)])
        assert result.satisfiable
        assert result.model["x"] <= 5

    def test_two_sided_bounds(self):
        result = check_constraints([C({"x": 1}, ">=", 2), C({"x": 1}, "<=", 10)])
        assert result.satisfiable
        assert 2 <= result.model["x"] <= 10

    def test_simple_conflict(self):
        result = check_constraints([C({"x": 1}, ">=", 5), C({"x": 1}, "<=", 3)])
        assert not result.satisfiable
        assert result.conflict == {0, 1}

    def test_multi_variable_sat(self):
        constraints = [
            C({"x": 1, "y": 1}, "<=", 10),
            C({"x": 1}, ">=", 3),
            C({"y": 1}, ">=", 4),
        ]
        result = check_constraints(constraints)
        assert result.satisfiable
        model = result.model
        assert model["x"] + model["y"] <= 10
        assert model["x"] >= 3
        assert model["y"] >= 4

    def test_multi_variable_unsat(self):
        constraints = [
            C({"x": 1, "y": 1}, "<=", 5),
            C({"x": 1}, ">=", 3),
            C({"y": 1}, ">=", 4),
        ]
        result = check_constraints(constraints)
        assert not result.satisfiable
        assert result.conflict is not None
        # the explanation must itself be infeasible
        core = [constraints[i] for i in result.conflict]
        assert not check_constraints(core).satisfiable

    def test_equality_constraints(self):
        constraints = [
            C({"x": 1, "y": -1}, "=", 0),
            C({"x": 1}, "=", 7),
        ]
        result = check_constraints(constraints)
        assert result.satisfiable
        assert result.model["x"] == result.model["y"] == 7

    def test_equality_conflict(self):
        constraints = [
            C({"x": 1}, "=", 3),
            C({"x": 1}, "=", 4),
        ]
        result = check_constraints(constraints)
        assert not result.satisfiable

    def test_strict_inequality_satisfied_strictly(self):
        constraints = [C({"x": 1}, ">", 0), C({"x": 1}, "<", 1)]
        result = check_constraints(constraints)
        assert result.satisfiable
        assert 0 < result.model["x"] < 1

    def test_strict_inequality_conflict(self):
        constraints = [C({"x": 1}, ">", 3), C({"x": 1}, "<", 3)]
        result = check_constraints(constraints)
        assert not result.satisfiable

    def test_strict_vs_nonstrict_boundary(self):
        constraints = [C({"x": 1}, ">=", 3), C({"x": 1}, "<", 3)]
        result = check_constraints(constraints)
        assert not result.satisfiable

    def test_negative_coefficients(self):
        constraints = [C({"x": -2}, "<=", -6)]  # -2x <= -6  =>  x >= 3
        result = check_constraints(constraints)
        assert result.satisfiable
        assert result.model["x"] >= 3

    def test_ground_true_constraint(self):
        result = check_constraints([C({}, "<=", 5)])
        assert result.satisfiable

    def test_ground_false_constraint(self):
        result = check_constraints([C({}, "<=", -5)])
        assert not result.satisfiable
        assert result.conflict == {0}

    def test_chain_of_differences(self):
        # x0 <= x1 <= ... <= x5, x0 >= 10, x5 <= 9 is unsat
        constraints = []
        for i in range(5):
            constraints.append(C({f"x{i}": 1, f"x{i+1}": -1}, "<=", 0))
        constraints.append(C({"x0": 1}, ">=", 10))
        constraints.append(C({"x5": 1}, "<=", 9))
        result = check_constraints(constraints)
        assert not result.satisfiable

    def test_larger_feasible_system(self):
        constraints = [
            C({"a": 1, "b": 2, "c": -1}, "<=", 4),
            C({"a": -1, "b": 1}, "<=", 1),
            C({"b": 1, "c": 1}, ">=", 2),
            C({"a": 1}, ">=", 0),
            C({"c": 1}, "<=", 10),
        ]
        result = check_constraints(constraints)
        assert result.satisfiable
        model = result.model
        assert model["a"] + 2 * model["b"] - model["c"] <= 4
        assert -model["a"] + model["b"] <= 1
        assert model["b"] + model["c"] >= 2
        assert model["a"] >= 0
        assert model["c"] <= 10


class TestLia:
    def test_integer_gap_unsat(self):
        # 2x = 1 has a rational solution but no integer one
        result = check_lia([C({"x": 2}, "=", 1)], {"x"})
        assert result.status == "unsat"

    def test_integer_gap_between_bounds(self):
        # 0.2 <= x <= 0.8 has no integer point
        constraints = [
            C({"x": 5}, ">=", 1),
            C({"x": 5}, "<=", 4),
        ]
        result = check_lia(constraints, {"x"})
        assert result.status == "unsat"

    def test_integer_feasible(self):
        constraints = [
            C({"x": 1, "y": 1}, "=", 7),
            C({"x": 1}, ">=", 3),
            C({"y": 1}, ">=", 2),
        ]
        result = check_lia(constraints, {"x", "y"})
        assert result.status == "sat"
        assert result.model["x"].denominator == 1
        assert result.model["x"] + result.model["y"] == 7

    def test_rational_conflict_has_explanation(self):
        constraints = [
            C({"x": 1}, ">=", 10),
            C({"x": 1}, "<=", 0),
            C({"y": 1}, "<=", 100),
        ]
        result = check_lia(constraints, {"x", "y"})
        assert result.status == "unsat"
        assert result.conflict is not None
        assert 2 not in result.conflict  # irrelevant constraint excluded

    def test_mixed_real_and_int(self):
        constraints = [
            C({"x": 2}, "=", 1),  # x = 0.5 allowed because x is real-sorted here
        ]
        result = check_lia(constraints, set())
        assert result.status == "sat"
        assert result.model["x"] == Fraction(1, 2)

    def test_node_budget_gives_unknown(self):
        # A system engineered to branch a lot with a tiny budget.
        constraints = [
            C({"x": 3, "y": -3}, "=", 1),  # no integer solutions
        ]
        result = check_lia(constraints, {"x", "y"}, max_nodes=1)
        assert result.status in ("unknown", "unsat")
