// Broken init_zeros: the loop pushes exactly n zeros, but the signature
// claims n + 1 elements.
#[flux::sig(fn(usize[@n]) -> RVec<f32>[n + 1])]
fn init_zeros(n: usize) -> RVec<f32> {
    let mut vec = RVec::new();
    let mut i = 0;
    while i < n {
        vec.push(0.0);
        i += 1;
    }
    vec
}
