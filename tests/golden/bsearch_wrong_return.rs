// Broken bsearch: the signature claims the result is a *valid index*
// (v < n), but the not-found sentinel is items.len() == n.
#[flux::sig(fn(i32, &RVec<i32>[@n]) -> usize{v: v < n})]
fn bsearch(target: i32, items: &RVec<i32>) -> usize {
    let mut lo = 0;
    let mut hi = items.len();
    let mut result = items.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let val = *items.get(mid);
        if val == target {
            result = mid;
            hi = mid;
        } else {
            if val < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
    }
    result
}
