// Broken dotprod: the second vector's length is no longer tied to the
// first's, so indexing ys with an index bounded by xs.len() is unsafe.
#[flux::sig(fn(&RVec<f32>[@n], &RVec<f32>) -> f32)]
fn dotprod(xs: &RVec<f32>, ys: &RVec<f32>) -> f32 {
    let mut sum = 0.0;
    let mut i = 0;
    while i < xs.len() {
        sum = sum + *xs.get(i) * *ys.get(i);
        i += 1;
    }
    sum
}
