// Broken rmat_get: the index bounds are transposed (i < n, j < m instead
// of i < m, j < n), so both accesses overflow on non-square matrices.
#[flux::sig(fn(&RVec<RVec<f32>[@n]>[@m], usize{v: v < n}, usize{v: v < m}) -> f32)]
fn rmat_get(data: &RVec<RVec<f32>>, i: usize, j: usize) -> f32 {
    let row = data.get(i);
    *row.get(j)
}
