// Broken translate: the return bound is strict (v < b + s), but an offset
// of exactly s is allowed by the precondition and yields v == b + s.
#[flux::refined_by(base: int, size: int)]
struct SandboxMemory {
    #[flux::field(usize[base])]
    base: usize,
    #[flux::field(usize[size])]
    size: usize,
}

#[flux::sig(fn(&SandboxMemory[@b, @s], usize{v: v <= s}) -> usize{v: b <= v && v < b + s})]
fn translate(sbx: &SandboxMemory, offset: usize) -> usize {
    let base = sbx.base;
    base + offset
}
