"""The observability layer: metrics registry, tracer, events, exporters,
serial-vs-parallel counter determinism, and the CLI export flags."""

import json

import pytest

from repro.obs import (
    EventLog,
    MetricError,
    MetricsRegistry,
    NOOP_SPAN,
    ObsContext,
    Tracer,
    current_obs,
    span,
    to_prometheus,
    use_obs,
)
from repro.service import VerifyJob, VerifySession, verify_jobs
from repro.service.cli import main as cli_main


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_inc_and_value(self):
        registry = MetricsRegistry()
        registry.counter("a.hits").inc()
        registry.counter("a.hits").inc(4)
        assert registry.value("a.hits") == 5

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.counter("a").inc(-1)

    def test_gauge_set(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(3)
        registry.gauge("depth").set(2)
        assert registry.value("depth") == 2

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("sizes", (1, 5, 10))
        for value in (0, 1, 3, 7, 100):
            histogram.observe(value)
        snapshot = registry.snapshot()["sizes"]
        # le=1 gets {0, 1}; le=5 gets {3}; le=10 gets {7}; +Inf gets {100}.
        assert snapshot["counts"] == [2, 1, 1, 1]
        assert snapshot["count"] == 5
        assert snapshot["sum"] == 111

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricError):
            registry.gauge("x")

    def test_merge_adds_counters_and_histograms_takes_max_gauges(self):
        left = MetricsRegistry()
        right = MetricsRegistry()
        left.counter("c").inc(2)
        right.counter("c").inc(3)
        left.gauge("g").set(7)
        right.gauge("g").set(5)
        left.histogram("h", (1, 2)).observe(1)
        right.histogram("h", (1, 2)).observe(2)
        left.merge(right.snapshot())
        assert left.value("c") == 5
        assert left.value("g") == 7
        assert left.snapshot()["h"]["count"] == 2

    def test_merge_auto_registers_unknown_metrics(self):
        left = MetricsRegistry()
        right = MetricsRegistry()
        right.counter("only.right").inc(9)
        left.merge(right.snapshot())
        assert left.value("only.right") == 9

    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("c", help="x", unit="things").inc()
        registry.histogram("h", (1, 2)).observe(1.5)
        assert json.loads(json.dumps(registry.snapshot())) == registry.snapshot()


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _parse_prometheus(text: str):
    """Minimal parser: {metric_name_or_series: value}, plus TYPE lines."""
    samples = {}
    types = {}
    for line in text.strip().splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        series, value = line.rsplit(" ", 1)
        samples[series] = float(value)
    return samples, types


class TestPrometheusExport:
    def test_counter_and_histogram_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("smt.queries").inc(7)
        histogram = registry.histogram("smt.query_seconds", (0.1, 1.0), unit="seconds")
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        samples, types = _parse_prometheus(to_prometheus(registry.snapshot()))
        assert samples["repro_smt_queries_total"] == 7
        assert types["repro_smt_queries_total"] == "counter"
        assert types["repro_smt_query_seconds"] == "histogram"
        # Cumulative buckets: le=0.1 has 1, le=1.0 has 2, +Inf has all 3.
        assert samples['repro_smt_query_seconds_bucket{le="0.1"}'] == 1
        assert samples['repro_smt_query_seconds_bucket{le="1"}'] == 2
        assert samples['repro_smt_query_seconds_bucket{le="+Inf"}'] == 3
        assert samples["repro_smt_query_seconds_count"] == 3
        assert samples["repro_smt_query_seconds_sum"] == pytest.approx(5.55)


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_disabled_tracer_returns_shared_noop(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything") is NOOP_SPAN
        with tracer.span("anything"):
            pass
        assert tracer.events == []

    def test_enabled_tracer_records_complete_events(self):
        tracer = Tracer(enabled=True)
        with tracer.span("phase", function="f"):
            pass
        (event,) = tracer.events
        assert event["ph"] == "X"
        assert event["name"] == "phase"
        assert event["args"] == {"function": "f"}
        assert event["dur"] >= 0
        assert isinstance(event["pid"], int) and isinstance(event["tid"], int)

    def test_chrome_export_schema(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        path = tmp_path / "trace.json"
        tracer.export(str(path))
        trace = json.loads(path.read_text())
        assert trace["displayTimeUnit"] == "ms"
        phases = [event["ph"] for event in trace["traceEvents"]]
        assert phases.count("X") == 2
        assert "M" in phases  # process_name metadata

    def test_absorb_keeps_foreign_pids(self):
        tracer = Tracer(enabled=True)
        tracer.absorb([{"ph": "X", "name": "w", "ts": 0, "dur": 1, "pid": 99999, "tid": 1}])
        labels = [
            event["args"]["name"]
            for event in tracer.to_chrome()["traceEvents"]
            if event["ph"] == "M"
        ]
        assert "repro worker 99999" in labels

    def test_span_feeds_phase_seconds_counter(self):
        registry = MetricsRegistry()
        tracer = Tracer(enabled=True, registry=registry)
        with tracer.span("check"):
            pass
        assert "phase_seconds.check" in registry.snapshot()


# ---------------------------------------------------------------------------
# Event log
# ---------------------------------------------------------------------------


class TestEventLog:
    def test_disabled_log_records_nothing(self):
        log = EventLog(enabled=False)
        log.emit("smt_check", result="sat")
        assert log.to_json()["events"] == []

    def test_ring_buffer_drops_oldest(self):
        log = EventLog(enabled=True, limit=2)
        for index in range(5):
            log.emit("tick", index=index)
        payload = log.to_json()
        assert [event["index"] for event in payload["events"]] == [3, 4]
        assert payload["dropped"] == 3

    def test_events_carry_timestamp_and_pid(self):
        log = EventLog(enabled=True)
        log.emit("smt_check", result="unsat")
        (event,) = log.to_json()["events"]
        assert event["type"] == "smt_check"
        assert event["result"] == "unsat"
        assert event["ts"] > 0 and event["pid"] > 0


# ---------------------------------------------------------------------------
# Context plumbing
# ---------------------------------------------------------------------------


class TestObsContext:
    def test_module_span_is_noop_by_default(self):
        assert span("anything") is NOOP_SPAN

    def test_use_obs_installs_and_restores(self):
        context = ObsContext.create(trace=True)
        default = current_obs()
        with use_obs(context):
            assert current_obs() is context
            with span("phase"):
                pass
        assert current_obs() is default
        assert [event["name"] for event in context.tracer.events] == ["phase"]

    def test_contexts_isolate_registries(self):
        first, second = ObsContext.create(), ObsContext.create()
        with use_obs(first):
            current_obs().registry.counter("n").inc()
        with use_obs(second):
            assert current_obs().registry.snapshot() == {}


# ---------------------------------------------------------------------------
# Pipeline integration: determinism across scheduling modes
# ---------------------------------------------------------------------------

MULTI = """
#[flux::sig(fn(i32[@x]) -> i32{v: v > x})]
fn inc(x: i32) -> i32 { x + 1 }

#[flux::sig(fn(i32[@x]) -> i32{v: v > x})]
fn inc2(x: i32) -> i32 { inc(inc(x)) }

#[flux::sig(fn(usize[@n]) -> usize[n])]
fn fill_len(n: usize) -> usize {
    let mut v = RVec::new();
    let mut i = 0;
    while i < n {
        v.push(i);
        i += 1;
    }
    v.len()
}
"""


def _counter_totals(session: VerifySession):
    """All non-time scalar metrics of a session (times are nondeterministic)."""
    totals = {}
    for name, entry in session.metrics_snapshot().items():
        if entry.get("unit") == "seconds":
            continue
        if entry["kind"] == "histogram":
            totals[name] = (entry["count"], tuple(entry["counts"]))
        else:
            totals[name] = entry["value"]
    return totals


class TestSchedulingDeterminism:
    def test_serial_and_parallel_counter_totals_match(self):
        job = VerifyJob(source=MULTI, name="multi")
        serial = VerifySession(use_cache=False, jobs=1)
        parallel = VerifySession(use_cache=False, jobs=2)
        serial_report = verify_jobs([job], serial)
        parallel_report = verify_jobs([job], parallel)
        assert serial_report.ok and parallel_report.ok
        assert _counter_totals(serial) == _counter_totals(parallel)

    def test_verification_emits_expected_counter_families(self):
        session = VerifySession(use_cache=False)
        verify_jobs([VerifyJob(source=MULTI, name="multi")], session)
        names = set(session.metrics_snapshot())
        assert "fixpoint.smt_queries" in names
        assert "smt.queries.oneshot" in names
        assert "smt.query_seconds" in names

    def test_function_report_metrics_survive_scheduling(self):
        job = VerifyJob(source=MULTI, name="multi")
        serial = verify_jobs([job], VerifySession(use_cache=False, jobs=1))
        parallel = verify_jobs([job], VerifySession(use_cache=False, jobs=2))
        by_name = lambda report: {  # noqa: E731
            fn.name: {
                key: value
                for key, value in fn.metrics.items()
                if not key.endswith("_time")
            }
            for fn in report.jobs[0].functions
        }
        assert by_name(serial) == by_name(parallel)


# ---------------------------------------------------------------------------
# CLI export flags
# ---------------------------------------------------------------------------


class TestCliExports:
    def test_trace_metrics_events_and_stats(self, tmp_path, capsys):
        source = tmp_path / "program.rs"
        source.write_text(MULTI)
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.prom"
        events_path = tmp_path / "events.json"
        code = cli_main(
            [
                str(source),
                "--no-cache",
                "--trace-out",
                str(trace_path),
                "--metrics-out",
                str(metrics_path),
                "--events-out",
                str(events_path),
                "--stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "== session metrics ==" in out
        assert "fixpoint.smt_queries" in out

        trace = json.loads(trace_path.read_text())
        names = {event["name"] for event in trace["traceEvents"] if event["ph"] == "X"}
        assert {"parse", "spec_elaboration", "mir_lower", "check", "fixpoint"} <= names

        samples, _ = _parse_prometheus(metrics_path.read_text())
        assert samples["repro_fixpoint_smt_queries_total"] > 0

        events = json.loads(events_path.read_text())
        assert any(event["type"] == "smt_check" for event in events["events"])

    def test_parallel_trace_includes_worker_processes(self, tmp_path):
        source = tmp_path / "program.rs"
        source.write_text(MULTI)
        trace_path = tmp_path / "trace.json"
        code = cli_main(
            [str(source), "--no-cache", "--jobs", "2", "--summary", "--trace-out", str(trace_path)]
        )
        assert code == 0
        trace = json.loads(trace_path.read_text())
        span_pids = {event["pid"] for event in trace["traceEvents"] if event["ph"] == "X"}
        # Main process always traces parse/spec elaboration; per-function
        # spans come from the pool (>= 1 worker pid when the sandbox allows
        # subprocesses; the serial fallback leaves everything on one pid).
        assert len(span_pids) >= 1
        labels = {
            event["args"]["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "M"
        }
        assert "repro (main)" in labels
