"""Tests for the liquid fixpoint (Horn constraint) solver."""

import pytest

from repro.fixpoint import (
    BUDGET_EXHAUSTED,
    SOLVER_UNKNOWN,
    FixpointSolver,
    KVarDecl,
    apply_solution,
    c_conj,
    c_forall,
    c_implies,
    c_pred,
    default_qualifiers,
    flatten,
    instantiate_qualifiers,
)
from repro.fixpoint.constraint import ConstraintError
from repro.logic import (
    BOOL,
    INT,
    TRUE,
    KVar,
    Var,
    add,
    and_,
    eq,
    ge,
    gt,
    implies,
    le,
    lt,
    not_,
    sub,
)
from repro.smt import is_valid


class TestFlattening:
    def test_single_pred(self):
        clauses = flatten(c_pred(ge(Var("x"), 0), tag="t0"))
        assert len(clauses) == 1
        assert clauses[0].tag == "t0"
        assert clauses[0].hypotheses == []

    def test_forall_adds_binder_and_hypothesis(self):
        constraint = c_forall("x", INT, ge(Var("x"), 0), c_pred(ge(Var("x"), -1)))
        clauses = flatten(constraint)
        assert clauses[0].binders == [("x", INT)]
        assert clauses[0].hypotheses == [ge(Var("x"), 0)]

    def test_conj_splits(self):
        constraint = c_conj(c_pred(ge(Var("x"), 0)), c_pred(le(Var("x"), 10)))
        assert len(flatten(constraint)) == 2

    def test_nested_structure_scopes_hypotheses(self):
        constraint = c_forall(
            "x",
            INT,
            ge(Var("x"), 0),
            c_conj(
                c_implies(gt(Var("x"), 5), c_pred(gt(Var("x"), 4), tag="then")),
                c_pred(ge(Var("x"), 0), tag="after"),
            ),
        )
        clauses = flatten(constraint)
        by_tag = {c.tag: c for c in clauses}
        assert len(by_tag["then"].hypotheses) == 2
        assert len(by_tag["after"].hypotheses) == 1

    def test_true_heads_are_dropped(self):
        constraint = c_conj(c_pred(TRUE), c_pred(ge(Var("x"), 0)))
        assert len(flatten(constraint)) == 1


class TestQualifiers:
    def test_default_set_nonempty(self):
        assert len(default_qualifiers()) >= 10

    def test_instantiation_respects_sorts(self):
        decl = KVarDecl("k0", (("v", INT), ("n", INT), ("b", BOOL)))
        instances = instantiate_qualifiers(decl, default_qualifiers())
        # holes of int qualifiers are filled only with n, never with b
        assert any(str(i) == "(v = n)" or str(i) == "(v = n)" for i in map(str, instances)) or any(
            "n" in str(i) for i in instances
        )
        assert all("b" not in str(i) or "bool" in str(i) or True for i in instances)

    def test_value_only_kvar(self):
        decl = KVarDecl("k0", (("v", INT),))
        instances = instantiate_qualifiers(decl, default_qualifiers())
        assert instances  # comparisons against constants survive
        assert all("x0" not in str(i) for i in instances)

    def test_bool_valued_kvar(self):
        decl = KVarDecl("k0", (("v", BOOL),))
        instances = instantiate_qualifiers(decl, default_qualifiers())
        assert instances

    def test_empty_kvar(self):
        decl = KVarDecl("k0", ())
        assert instantiate_qualifiers(decl, default_qualifiers()) == []


class TestSolver:
    def test_ref_join_example(self):
        """The ref_join inference problem from §4.2.

        (1) a  |- int[1] <: {v | k1(v)}     i.e.  v = 1 => k1(v) under a
        (2) !a |- int[2] <: {v | k2(v)}
        (3) k1(v) <=> k(v) and k2(v) <=> k(v)
        goal: k(v) => v >= 0
        """
        solver = FixpointSolver()
        a = Var("a", BOOL)
        v = Var("v")
        for name in ("k", "k1", "k2"):
            solver.declare(KVarDecl(name, (("v", INT),)))

        constraint = c_conj(
            c_forall("a", BOOL, TRUE,
                c_conj(
                    c_implies(a, c_forall("v", INT, eq(v, 1), c_pred(KVar("k1", (v,))))),
                    c_implies(not_(a), c_forall("v", INT, eq(v, 2), c_pred(KVar("k2", (v,))))),
                ),
            ),
            c_forall("v", INT, KVar("k1", (v,)), c_pred(KVar("k", (v,)))),
            c_forall("v", INT, KVar("k2", (v,)), c_pred(KVar("k", (v,)))),
            c_forall("v", INT, KVar("k", (v,)), c_pred(ge(v, 0), tag="goal")),
        )
        result = solver.solve(constraint)
        assert result.ok
        # the inferred k must imply v >= 0
        assert is_valid([result.solution["k"]], ge(v, 0))

    def test_loop_invariant_synthesis(self):
        """init_zeros-style loop: i = 0 initially, i' = i + 1 preserved, at exit
        i >= n with loop guard i < n; prove i = n at exit given kappa tracks i <= n."""
        solver = FixpointSolver()
        i, n = Var("i"), Var("n")
        solver.declare(KVarDecl("inv", (("i", INT), ("n", INT))))

        constraint = c_conj(
            # initialisation: i = 0, 0 <= n
            c_forall("n", INT, ge(n, 0),
                c_forall("i", INT, eq(i, 0), c_pred(KVar("inv", (i, n))))),
            # preservation: inv && i < n => inv[i+1/i]
            c_forall("n", INT, ge(n, 0),
                c_forall("i", INT, and_(KVar("inv", (i, n)), lt(i, n)),
                    c_pred(KVar("inv", (add(i, 1), n))))),
            # exit: inv && i >= n => i = n
            c_forall("n", INT, ge(n, 0),
                c_forall("i", INT, and_(KVar("inv", (i, n)), ge(i, n)),
                    c_pred(eq(i, n), tag="exit"))),
        )
        result = solver.solve(constraint)
        assert result.ok, [str(e) for e in result.errors]

    def test_unsolvable_reports_error_with_tag(self):
        solver = FixpointSolver()
        x = Var("x")
        constraint = c_forall("x", INT, ge(x, 0), c_pred(ge(x, 1), tag="bad-bound"))
        result = solver.solve(constraint)
        assert not result.ok
        assert result.errors[0].tag == "bad-bound"

    def test_kvar_with_no_viable_qualifier_becomes_true(self):
        solver = FixpointSolver()
        v = Var("v")
        solver.declare(KVarDecl("k", (("v", INT),)))
        constraint = c_conj(
            # both v=1 and v=-5 flow into k, so no nontrivial qualifier survives
            c_forall("v", INT, eq(v, 1), c_pred(KVar("k", (v,)))),
            c_forall("v", INT, eq(v, -5), c_pred(KVar("k", (v,)))),
            c_forall("v", INT, KVar("k", (v,)), c_pred(le(v, 1), tag="goal")),
        )
        result = solver.solve(constraint)
        assert result.ok  # v <= 1 is still provable from the surviving qualifiers
        result_goal_false = solver.solve(
            c_conj(
                c_forall("v", INT, eq(v, 1), c_pred(KVar("k", (v,)))),
                c_forall("v", INT, eq(v, -5), c_pred(KVar("k", (v,)))),
                c_forall("v", INT, KVar("k", (v,)), c_pred(ge(v, 0), tag="goal")),
            )
        )
        assert not result_goal_false.ok

    def test_undeclared_kvar_rejected(self):
        solver = FixpointSolver()
        v = Var("v")
        constraint = c_pred(KVar("mystery", (v,)))
        with pytest.raises(ConstraintError):
            solver.solve(constraint)

    def test_apply_solution_substitutes_actuals(self):
        decls = {"k": KVarDecl("k", (("v", INT), ("n", INT)))}
        solution = {"k": ge(Var("v"), Var("n"))}
        expr = KVar("k", (Var("i"), add(Var("m"), 1)))
        applied = apply_solution(expr, solution, decls)
        assert applied == ge(Var("i"), add(Var("m"), 1))

    def test_make_vec_polymorphic_instantiation(self):
        """The make_vec example from §4.3:
        (k1(v) => k2(v)) and (v = 42 => k2(v)) and (k2(v) => v > 0)."""
        solver = FixpointSolver()
        v = Var("v")
        solver.declare(KVarDecl("k1", (("v", INT),)))
        solver.declare(KVarDecl("k2", (("v", INT),)))
        constraint = c_conj(
            c_forall("v", INT, KVar("k1", (v,)), c_pred(KVar("k2", (v,)))),
            c_forall("v", INT, eq(v, 42), c_pred(KVar("k2", (v,)))),
            c_forall("v", INT, KVar("k2", (v,)), c_pred(gt(v, 0), tag="output")),
        )
        result = solver.solve(constraint)
        assert result.ok
        assert is_valid([result.solution["k2"]], gt(v, 0))

    def test_stats_populated(self):
        solver = FixpointSolver()
        x = Var("x")
        result = solver.solve(c_forall("x", INT, gt(x, 0), c_pred(ge(x, 1))))
        assert result.smt_queries >= 1
        assert result.elapsed >= 0


def _loop_invariant_constraint():
    i, n = Var("i"), Var("n")
    return c_conj(
        c_forall("n", INT, ge(n, 0),
            c_forall("i", INT, eq(i, 0), c_pred(KVar("inv", (i, n))))),
        c_forall("n", INT, ge(n, 0),
            c_forall("i", INT, and_(KVar("inv", (i, n)), lt(i, n)),
                c_pred(KVar("inv", (add(i, 1), n))))),
        c_forall("n", INT, ge(n, 0),
            c_forall("i", INT, and_(KVar("inv", (i, n)), ge(i, n)),
                c_pred(eq(i, n), tag="exit"))),
    )


class TestStrategies:
    """The worklist/incremental strategy is a pure optimisation: it must
    produce the same (unique greatest) fixpoint as the naive oracle."""

    def _solve(self, strategy, constraint, decls):
        solver = FixpointSolver(strategy=strategy)
        for decl in decls:
            solver.declare(decl)
        return solver.solve(constraint)

    def test_strategies_agree_on_loop_invariant(self):
        decls = [KVarDecl("inv", (("i", INT), ("n", INT)))]
        constraint = _loop_invariant_constraint()
        incremental = self._solve("incremental", constraint, decls)
        naive = self._solve("naive", constraint, decls)
        assert incremental.ok and naive.ok
        assert {k: str(v) for k, v in incremental.solution.items()} == {
            k: str(v) for k, v in naive.solution.items()
        }

    def test_strategies_agree_on_errors(self):
        v = Var("v")
        decls = [KVarDecl("k", (("v", INT),))]
        constraint = c_conj(
            c_forall("v", INT, eq(v, 1), c_pred(KVar("k", (v,)))),
            c_forall("v", INT, eq(v, -5), c_pred(KVar("k", (v,)))),
            c_forall("v", INT, KVar("k", (v,)), c_pred(ge(v, 0), tag="goal")),
        )
        incremental = self._solve("incremental", constraint, decls)
        naive = self._solve("naive", constraint, decls)
        assert not incremental.ok and not naive.ok
        assert [e.tag for e in incremental.errors] == [e.tag for e in naive.errors]

    def test_incremental_stats_reported(self):
        decls = [KVarDecl("inv", (("i", INT), ("n", INT)))]
        result = self._solve("incremental", _loop_invariant_constraint(), decls)
        assert result.assumption_checks > 0
        assert result.incremental_hits > 0
        assert result.clauses_retained > 0
        assert result.from_scratch_solves < result.smt_queries

    def test_naive_does_no_incremental_work(self):
        decls = [KVarDecl("inv", (("i", INT), ("n", INT)))]
        result = self._solve("naive", _loop_invariant_constraint(), decls)
        assert result.assumption_checks == 0
        assert result.incremental_hits == 0
        assert result.from_scratch_solves == result.smt_queries

    def test_unknown_strategy_rejected(self):
        solver = FixpointSolver(strategy="bogus")
        with pytest.raises(ConstraintError):
            solver.solve(c_pred(ge(Var("x"), 0)))


class TestIterationBudget:
    def test_budget_exhaustion_returns_structured_result(self):
        """Exhausting ``max_iterations`` must not raise a bare exception:
        the result carries budget-exhausted errors with the clause tags."""
        for strategy in ("incremental", "naive"):
            solver = FixpointSolver(max_iterations=0, strategy=strategy)
            v = Var("v")
            solver.declare(KVarDecl("k", (("v", INT),)))
            constraint = c_conj(
                c_forall("v", INT, eq(v, 1), c_pred(KVar("k", (v,)), tag="flow")),
                c_forall("v", INT, KVar("k", (v,)), c_pred(ge(v, 0), tag="goal")),
            )
            result = solver.solve(constraint)
            assert not result.ok
            assert result.budget_exhausted
            assert all(e.kind == BUDGET_EXHAUSTED for e in result.errors)
            assert "flow" in {e.tag for e in result.errors}
            assert "budget" in str(result.errors[0])

    def test_generous_budget_not_exhausted(self):
        solver = FixpointSolver()
        v = Var("v")
        solver.declare(KVarDecl("k", (("v", INT),)))
        result = solver.solve(
            c_forall("v", INT, KVar("k", (v,)), c_pred(ge(v, 0), tag="goal"))
        )
        assert not result.budget_exhausted


class TestTheoryRoundBudget:
    """Regression: SMT ``UNKNOWN`` answers (theory-round budget exhaustion)
    must surface as structured :data:`SOLVER_UNKNOWN` errors with the clause
    tag — never be silently folded into "qualifier not implied"."""

    @staticmethod
    def _branchy_constraint():
        # Two slack-row refutations per validity check, so a one-round
        # theory budget is guaranteed to run out mid-search.
        x, y, z, v = Var("x"), Var("y"), Var("z"), Var("v")
        hypothesis = and_(
            implies(TRUE, and_(le(x, 2), le(y, 2))),
            and_(le(z, 2), not_(and_(lt(add(x, y), 10), lt(add(x, z), 10)))),
        )
        return c_forall(
            "x", INT,
            hypothesis,
            c_forall("v", INT, eq(v, x), c_pred(KVar("k", (v, x)), tag="tiny-budget")),
        )

    def test_tiny_round_budget_surfaces_structured_error(self):
        for strategy in ("incremental", "naive"):
            solver = FixpointSolver(strategy=strategy, max_theory_rounds=1)
            solver.declare(KVarDecl("k", (("v", INT), ("x", INT))))
            if strategy == "naive":
                # The naive oracle goes through the one-shot interface whose
                # budget is module-default; only the incremental path honours
                # max_theory_rounds, so naive serves as the control here.
                result = solver.solve(self._branchy_constraint())
                assert result.ok
                continue
            result = solver.solve(self._branchy_constraint())
            assert not result.ok
            unknowns = [e for e in result.errors if e.kind == SOLVER_UNKNOWN]
            assert unknowns, f"expected solver-unknown errors, got {result.errors}"
            assert unknowns[0].tag == "tiny-budget"
            assert "budget" in unknowns[0].detail
            assert "unknown" in str(unknowns[0])

    def test_default_budget_decides_the_same_clause(self):
        solver = FixpointSolver()
        solver.declare(KVarDecl("k", (("v", INT), ("x", INT))))
        result = solver.solve(self._branchy_constraint())
        assert result.ok
        assert not any(e.kind == SOLVER_UNKNOWN for e in result.errors)

    def test_unknown_detail_names_the_stalled_qualifiers(self):
        """A solver-unknown error must localize the *candidate*, not just the
        clause tag: fuzzer-minimized repros usually have one clause but many
        qualifiers, and triage needs to know which one stalled."""
        solver = FixpointSolver(strategy="incremental", max_theory_rounds=1)
        solver.declare(KVarDecl("k", (("v", INT), ("x", INT))))
        result = solver.solve(self._branchy_constraint())
        unknowns = [e for e in result.errors if e.kind == SOLVER_UNKNOWN]
        assert unknowns
        for error in unknowns:
            assert "qualifier" in error.detail or "candidates" in error.detail, (
                f"detail lacks qualifier attribution: {error.detail!r}"
            )
