"""Unit tests for the refinement logic expression layer."""

from fractions import Fraction

import pytest

from repro.logic import (
    BOOL,
    FALSE,
    INT,
    TRUE,
    BinOp,
    BoolConst,
    Forall,
    IntConst,
    KVar,
    UnaryOp,
    Var,
    add,
    and_,
    eq,
    free_vars,
    ge,
    gt,
    iff,
    implies,
    kvars_of,
    le,
    lt,
    mul,
    ne,
    not_,
    or_,
    pretty,
    rename,
    simplify,
    sub,
    substitute,
)
from repro.logic.expr import App, Ite, conjuncts_of, sort_of
from repro.logic.sorts import FuncSort, LOC, REAL, sort_from_name


class TestSmartConstructors:
    def test_and_flattens_true(self):
        x = Var("x")
        assert and_(TRUE, gt(x, 0), TRUE) == gt(x, 0)

    def test_and_short_circuits_false(self):
        assert and_(gt(Var("x"), 0), FALSE) == FALSE

    def test_and_empty_is_true(self):
        assert and_() == TRUE

    def test_or_flattens_false(self):
        x = Var("x")
        assert or_(FALSE, gt(x, 0)) == gt(x, 0)

    def test_or_short_circuits_true(self):
        assert or_(gt(Var("x"), 0), TRUE) == TRUE

    def test_or_empty_is_false(self):
        assert or_() == FALSE

    def test_not_involution(self):
        p = gt(Var("x"), 0)
        assert not_(not_(p)) == p

    def test_not_constants(self):
        assert not_(TRUE) == FALSE
        assert not_(FALSE) == TRUE

    def test_implies_true_antecedent(self):
        q = gt(Var("x"), 0)
        assert implies(TRUE, q) == q

    def test_implies_false_antecedent(self):
        assert implies(FALSE, gt(Var("x"), 0)) == TRUE

    def test_int_coercion(self):
        assert eq(Var("x"), 3) == BinOp("=", Var("x"), IntConst(3))

    def test_bool_coercion(self):
        assert and_(True, Var("b", BOOL)) == Var("b", BOOL)

    def test_add_folds_constants(self):
        assert add(2, 3) == IntConst(5)

    def test_add_zero_identity(self):
        assert add(Var("x"), 0) == Var("x")
        assert add(0, Var("x")) == Var("x")

    def test_sub_folds_constants(self):
        assert sub(5, 3) == IntConst(2)

    def test_mul_identity_and_fold(self):
        assert mul(1, Var("x")) == Var("x")
        assert mul(4, 5) == IntConst(20)

    def test_bad_operator_rejected(self):
        with pytest.raises(ValueError):
            BinOp("^^", Var("x"), Var("y"))

    def test_bad_unary_rejected(self):
        with pytest.raises(ValueError):
            UnaryOp("~", Var("x"))


class TestSorts:
    def test_sort_lookup(self):
        assert sort_from_name("int") == INT
        assert sort_from_name("bool") == BOOL
        assert sort_from_name("loc") == LOC

    def test_unknown_sort(self):
        with pytest.raises(KeyError):
            sort_from_name("string")

    def test_func_sort_str(self):
        fs = FuncSort((INT, INT), BOOL)
        assert "->" in str(fs)

    def test_sort_of(self):
        assert sort_of(IntConst(3)) == INT
        assert sort_of(gt(Var("x"), 1)) == BOOL
        assert sort_of(add(Var("x"), 1)) == INT
        assert sort_of(Var("b", BOOL)) == BOOL
        assert sort_of(KVar("k", (Var("x"),))) == BOOL
        assert sort_of(App("len", (Var("v"),), INT)) == INT


class TestSubstitution:
    def test_simple_substitution(self):
        expr = gt(Var("x"), Var("y"))
        result = substitute(expr, {"x": IntConst(5)})
        assert result == gt(IntConst(5), Var("y"))

    def test_substitution_in_kvar_args(self):
        expr = KVar("k0", (Var("a"), add(Var("b"), 1)))
        result = substitute(expr, {"a": IntConst(7)})
        assert result == KVar("k0", (IntConst(7), add(Var("b"), 1)))

    def test_forall_shadowing(self):
        body = gt(Var("i"), Var("n"))
        expr = Forall((("i", INT),), body)
        result = substitute(expr, {"i": IntConst(0), "n": IntConst(10)})
        assert result == Forall((("i", INT),), gt(Var("i"), IntConst(10)))

    def test_empty_substitution_is_identity(self):
        expr = gt(Var("x"), 0)
        assert substitute(expr, {}) is expr

    def test_rename(self):
        expr = and_(gt(Var("x"), 0), lt(Var("x"), Var("y")))
        renamed = rename(expr, {"x": "z"})
        assert "x" not in free_vars(renamed)
        assert {"z", "y"} <= free_vars(renamed)


class TestFreeVars:
    def test_free_vars_basic(self):
        expr = and_(gt(Var("x"), 0), lt(Var("y"), Var("z")))
        assert free_vars(expr) == {"x", "y", "z"}

    def test_free_vars_forall(self):
        expr = Forall((("i", INT),), gt(Var("i"), Var("n")))
        assert free_vars(expr) == {"n"}

    def test_free_vars_app(self):
        expr = eq(App("lookup", (Var("v"), Var("i")), INT), Var("x"))
        assert free_vars(expr) == {"v", "i", "x"}

    def test_kvars_of(self):
        expr = implies(KVar("k1", (Var("a"),)), KVar("k2", (Var("a"), Var("b"))))
        assert kvars_of(expr) == {"k1", "k2"}

    def test_kvars_of_none(self):
        assert kvars_of(gt(Var("x"), 0)) == frozenset()


class TestSimplify:
    def test_constant_arith(self):
        assert simplify(add(IntConst(2), mul(IntConst(3), IntConst(4)))) == IntConst(14)

    def test_constant_comparison(self):
        assert simplify(gt(IntConst(5), IntConst(3))) == TRUE
        assert simplify(lt(IntConst(5), IntConst(3))) == FALSE

    def test_reflexive_comparison(self):
        x = Var("x")
        assert simplify(le(x, x)) == TRUE
        assert simplify(ne(x, x)) == FALSE

    def test_and_with_false(self):
        assert simplify(and_(gt(Var("x"), 0), BinOp("&&", TRUE, FALSE))) == FALSE

    def test_implication_with_true_consequent(self):
        assert simplify(implies(gt(Var("x"), 0), BinOp("<=", IntConst(0), IntConst(0)))) == TRUE

    def test_ite_folding(self):
        expr = Ite(TRUE, IntConst(1), IntConst(2))
        assert simplify(expr) == IntConst(1)

    def test_double_negation(self):
        p = gt(Var("x"), 0)
        assert simplify(not_(not_(p))) == p

    def test_mul_by_zero(self):
        assert simplify(mul(Var("x"), IntConst(0))) == IntConst(0)

    def test_iff_reflexive(self):
        p = gt(Var("x"), 0)
        assert simplify(iff(p, p)) == TRUE


class TestPretty:
    def test_flat_comparison(self):
        assert pretty(ge(Var("v"), 0)) == "v >= 0"

    def test_precedence_drops_parens(self):
        expr = and_(ge(Var("v"), 0), ge(Var("v"), Var("x")))
        assert pretty(expr) == "v >= 0 && v >= x"

    def test_arith_in_comparison(self):
        expr = eq(Var("v"), add(Var("n"), 1))
        assert pretty(expr) == "v = n + 1"

    def test_kvar(self):
        assert pretty(KVar("k0", (Var("a"),))) == "$k0(a)"

    def test_forall(self):
        expr = Forall((("i", INT),), implies(lt(Var("i"), Var("n")), gt(Var("i"), -1)))
        text = pretty(expr)
        assert text.startswith("forall i: int")

    def test_conjuncts_of(self):
        expr = and_(gt(Var("x"), 0), gt(Var("y"), 0), gt(Var("z"), 0))
        assert len(list(conjuncts_of(expr))) == 3
