"""Tests for the incremental SMT backend.

The load-bearing property is *equivalence*: an :class:`IncrementalSolver`
must agree with the one-shot pipeline (:func:`solve_formula` /
:func:`is_valid`) on every query, no matter how much state it has retained
from earlier checks.  The randomized differential tests below drive both
backends over the same formulas; the directed tests pin down the stack
discipline and the assumption handling of the SAT core.
"""

import random

from repro.logic.expr import (
    BinOp,
    IntConst,
    Var,
    add,
    and_,
    eq,
    ge,
    gt,
    implies,
    le,
    lt,
    not_,
    or_,
    sub,
)
from repro.logic.sorts import BOOL, INT
from repro.smt import IncrementalSolver, SatResult, is_valid
from repro.smt.sat import SatSolver
from repro.smt.solver import solve_formula


# -- random formula generator -------------------------------------------------

_VARS = [Var("x"), Var("y"), Var("z")]
_CONSTS = [IntConst(-2), IntConst(0), IntConst(1), IntConst(3)]


def _random_term(rng, depth=2):
    if depth == 0 or rng.random() < 0.4:
        return rng.choice(_VARS + _CONSTS)
    op = rng.choice([add, sub])
    return op(_random_term(rng, depth - 1), _random_term(rng, depth - 1))


def _random_atom(rng):
    op = rng.choice(["<", "<=", ">", ">=", "="])
    return BinOp(op, _random_term(rng), _random_term(rng))


def _random_formula(rng, depth=2):
    if depth == 0 or rng.random() < 0.35:
        return _random_atom(rng)
    shape = rng.random()
    lhs = _random_formula(rng, depth - 1)
    rhs = _random_formula(rng, depth - 1)
    if shape < 0.35:
        return and_(lhs, rhs)
    if shape < 0.7:
        return or_(lhs, rhs)
    if shape < 0.85:
        return implies(lhs, rhs)
    return not_(lhs)


class TestRandomizedDifferential:
    def test_check_sat_matches_one_shot(self):
        rng = random.Random(20260729)
        for _ in range(80):
            formula = _random_formula(rng, depth=3)
            expected = solve_formula(formula).result
            solver = IncrementalSolver()
            solver.push()
            solver.assert_expr(formula)
            got = solver.check_sat().result
            assert got == expected, f"diverged on {formula}"
            solver.pop()

    def test_check_valid_matches_is_valid(self):
        rng = random.Random(42)
        for _ in range(40):
            hypotheses = [_random_atom(rng) for _ in range(rng.randint(1, 3))]
            goals = [_random_formula(rng, depth=2) for _ in range(4)]
            solver = IncrementalSolver()
            solver.push()
            for hypothesis in hypotheses:
                solver.assert_expr(hypothesis)
            for goal in goals:
                assert solver.check_valid(goal) == is_valid(hypotheses, goal), (
                    f"diverged on {hypotheses} |= {goal}"
                )
            solver.pop()

    def test_retained_state_does_not_change_answers(self):
        """One long-lived solver must answer like a fresh solver per query."""
        rng = random.Random(7)
        solver = IncrementalSolver()
        for _ in range(25):
            hypotheses = [_random_atom(rng) for _ in range(rng.randint(1, 2))]
            goal = _random_formula(rng, depth=2)
            solver.push()
            for hypothesis in hypotheses:
                solver.assert_expr(hypothesis)
            assert solver.check_valid(goal) == is_valid(hypotheses, goal)
            solver.pop()


class TestAssertionStack:
    def test_push_pop_restores_state(self):
        x = Var("x")
        solver = IncrementalSolver({"x": INT})
        solver.assert_expr(ge(x, 0))
        assert solver.check_sat().result is SatResult.SAT
        solver.push()
        solver.assert_expr(lt(x, 0))
        assert solver.check_sat().result is SatResult.UNSAT
        solver.pop()
        assert solver.check_sat().result is SatResult.SAT

    def test_nested_scopes(self):
        x = Var("x")
        solver = IncrementalSolver({"x": INT})
        solver.push()
        solver.assert_expr(ge(x, 0))
        solver.push()
        solver.assert_expr(le(x, 10))
        assert solver.check_valid(le(x, 10))
        assert not solver.check_valid(le(x, 5))
        solver.pop()
        assert not solver.check_valid(le(x, 10))
        assert solver.check_valid(ge(x, 0))
        solver.pop()
        assert not solver.check_valid(ge(x, 0))

    def test_goals_do_not_leak_between_checks(self):
        """A tested goal must leave no trace: the same checks answer the
        same way in any order, matching the one-shot oracle."""
        x, n = Var("x"), Var("n")
        goals = [gt(x, 0), lt(x, 0), eq(x, n), le(x, n)]
        hypotheses = [ge(x, 1), le(x, n)]
        expected = [is_valid(hypotheses, goal) for goal in goals]
        for order in ([0, 1, 2, 3], [3, 2, 1, 0], [2, 0, 3, 1]):
            solver = IncrementalSolver({"x": INT, "n": INT})
            solver.push()
            for hypothesis in hypotheses:
                solver.assert_expr(hypothesis)
            for index in order:
                assert solver.check_valid(goals[index]) == expected[index]
            solver.pop()

    def test_repeated_goal_uses_cached_encoding(self):
        x = Var("x")
        solver = IncrementalSolver({"x": INT})
        for bound in (1, 2, 3):
            solver.push()
            solver.assert_expr(ge(x, bound))
            assert solver.check_valid(gt(x, 0))
            solver.pop()
        assert solver.assumption_checks == 3
        # clause database grew during the first visit, later ones reuse it
        assert solver.checks == 3

    def test_bool_sorted_variables(self):
        p = Var("p", BOOL)
        x = Var("x")
        solver = IncrementalSolver({"p": BOOL, "x": INT})
        solver.push()
        solver.assert_expr(implies(p, ge(x, 5)))
        solver.assert_expr(p)
        assert solver.check_valid(ge(x, 5))
        assert not solver.check_valid(ge(x, 6))
        solver.pop()


class TestSatAssumptionSoundness:
    def test_learned_clauses_do_not_bake_in_assumptions(self):
        """Regression: with assumptions planted at decision level 0, conflict
        analysis dropped them from learned clauses, so a clause learned under
        assumption ``a`` kept constraining later solves made without it."""
        solver = SatSolver()
        a, b, c = solver.new_var(), solver.new_var(), solver.new_var()
        solver.add_clause([-a, -b, c])
        solver.add_clause([-a, -b, -c])
        model = solver.solve(assumptions=[a])
        assert model is not None and model[a] is True and model[b] is False
        # Under the buggy scheme the first call could learn the unit (-b);
        # b must still be assignable once `a` is no longer assumed.
        model = solver.solve(assumptions=[b])
        assert model is not None and model[b] is True and model[a] is False

    def test_assumptions_after_backjump_are_reasserted(self):
        solver = SatSolver()
        variables = [solver.new_var() for _ in range(6)]
        a, b, c, d, e, f = variables
        solver.add_clause([-a, b])
        solver.add_clause([-c, d])
        solver.add_clause([-b, -d, e])
        solver.add_clause([-e, f])
        model = solver.solve(assumptions=[a, c])
        assert model is not None
        assert model[a] and model[b] and model[c] and model[d] and model[e] and model[f]

    def test_unsat_under_assumptions_is_not_permanent(self):
        solver = SatSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([-a, b])
        solver.add_clause([-a, -b])
        assert solver.solve(assumptions=[a]) is None
        model = solver.solve()
        assert model is not None and model[a] is False
        model = solver.solve(assumptions=[b])
        assert model is not None and model[b] is True
