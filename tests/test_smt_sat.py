"""Unit tests for the CDCL SAT core."""

import itertools
import random

import pytest

from repro.smt.sat import SatSolver


@pytest.fixture(autouse=True)
def _verify_models():
    """Every SAT answer in this suite is re-checked against the clause DB."""
    SatSolver.verify_models = True
    yield
    SatSolver.verify_models = False


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {i + 1: bits[i] for i in range(num_vars)}
        if all(
            any(assignment[abs(lit)] == (lit > 0) for lit in clause)
            for clause in clauses
        ):
            return True
    return False


class TestBasics:
    def test_empty_formula_is_sat(self):
        solver = SatSolver()
        assert solver.solve() == {}

    def test_single_unit_clause(self):
        solver = SatSolver()
        v = solver.new_var()
        solver.add_clause([v])
        model = solver.solve()
        assert model == {v: True}

    def test_conflicting_units(self):
        solver = SatSolver()
        v = solver.new_var()
        solver.add_clause([v])
        solver.add_clause([-v])
        assert solver.solve() is None

    def test_empty_clause_is_unsat(self):
        solver = SatSolver()
        solver.new_var()
        assert solver.add_clause([]) is False
        assert solver.solve() is None

    def test_tautology_ignored(self):
        solver = SatSolver()
        v = solver.new_var()
        assert solver.add_clause([v, -v]) is True
        assert solver.solve() is not None

    def test_unknown_variable_rejected(self):
        solver = SatSolver()
        with pytest.raises(ValueError):
            solver.add_clause([1])

    def test_simple_implication_chain(self):
        solver = SatSolver()
        a, b, c = solver.new_var(), solver.new_var(), solver.new_var()
        solver.add_clause([a])
        solver.add_clause([-a, b])
        solver.add_clause([-b, c])
        model = solver.solve()
        assert model[a] and model[b] and model[c]

    def test_pigeonhole_2_in_1_unsat(self):
        # two pigeons, one hole
        solver = SatSolver()
        p1, p2 = solver.new_var(), solver.new_var()
        solver.add_clause([p1])
        solver.add_clause([p2])
        solver.add_clause([-p1, -p2])
        assert solver.solve() is None

    def test_model_satisfies_clauses(self):
        solver = SatSolver()
        variables = [solver.new_var() for _ in range(4)]
        clauses = [
            [variables[0], variables[1]],
            [-variables[0], variables[2]],
            [-variables[1], -variables[2], variables[3]],
            [-variables[3], variables[0]],
        ]
        for clause in clauses:
            solver.add_clause(clause)
        model = solver.solve()
        assert model is not None
        for clause in clauses:
            assert any(model[abs(lit)] == (lit > 0) for lit in clause)


class TestAssumptions:
    def test_assumption_forces_value(self):
        solver = SatSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([-a, b])
        model = solver.solve(assumptions=[a])
        assert model[a] is True and model[b] is True

    def test_contradictory_assumptions(self):
        solver = SatSolver()
        a = solver.new_var()
        assert solver.solve(assumptions=[a, -a]) is None

    def test_assumption_conflicts_with_clause(self):
        solver = SatSolver()
        a = solver.new_var()
        solver.add_clause([-a])
        assert solver.solve(assumptions=[a]) is None

    def test_resolvable_without_assumption(self):
        solver = SatSolver()
        a = solver.new_var()
        solver.add_clause([-a])
        model = solver.solve()
        assert model[a] is False


class TestIncremental:
    def test_clause_added_between_solves(self):
        solver = SatSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        assert solver.solve() is not None
        solver.add_clause([-a])
        solver.add_clause([-b])
        assert solver.solve() is None

    def test_blocking_clause_enumeration(self):
        solver = SatSolver()
        variables = [solver.new_var() for _ in range(3)]
        solver.add_clause(variables)  # at least one true
        models = []
        while True:
            model = solver.solve()
            if model is None:
                break
            models.append(tuple(model[v] for v in variables))
            solver.add_clause([-v if model[v] else v for v in variables])
        assert len(set(models)) == 7  # all assignments except all-false


class TestRandomAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_3sat(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(3, 8)
        num_clauses = rng.randint(3, 25)
        clauses = []
        for _ in range(num_clauses):
            size = rng.randint(1, 3)
            clause = []
            for _ in range(size):
                var = rng.randint(1, num_vars)
                clause.append(var if rng.random() < 0.5 else -var)
            clauses.append(clause)
        expected = brute_force_sat(num_vars, clauses)

        solver = SatSolver()
        for _ in range(num_vars):
            solver.new_var()
        trivially_unsat = False
        for clause in clauses:
            if not solver.add_clause(clause):
                trivially_unsat = True
        model = None if trivially_unsat else solver.solve()
        assert (model is not None) == expected
        if model is not None:
            for clause in clauses:
                if any(-lit in clause for lit in clause):
                    continue  # tautologies are dropped by the solver
                assert any(model[abs(lit)] == (lit > 0) for lit in clause)
