"""Tests for MIR lowering and Rust-level type inference."""

import pytest

from repro.lang import ast, parse_program
from repro.mir import (
    Body,
    CallTerm,
    Goto,
    ReturnTerm,
    SwitchBool,
    SwitchVariant,
    infer_types,
    lower_function,
)
from repro.mir.typeinfer import ProgramTypes, TypeError_


def lower(source: str, name: str = None) -> Body:
    program = parse_program(source)
    fn = program.function(name) if name else program.functions[0]
    return lower_function(fn)


def lower_and_infer(source: str, name: str = None):
    program = parse_program(source)
    fn = program.function(name) if name else program.functions[0]
    body = lower_function(fn)
    types = infer_types(body, ProgramTypes.from_program(program))
    return body, types


class TestLowering:
    def test_straight_line(self):
        body = lower("fn f(x: i32) -> i32 { let y = x + 1; y }")
        assert len(body.blocks) == 1
        assert isinstance(body.blocks[0].terminator, ReturnTerm)

    def test_if_produces_join(self):
        body = lower("fn f(z: bool) -> i32 { if z { 1 } else { 2 } }")
        assert any(isinstance(b.terminator, SwitchBool) for b in body.blocks)
        preds = body.predecessors()
        join_blocks = [b for b, ps in preds.items() if len(ps) == 2]
        assert join_blocks

    def test_while_creates_loop_head(self):
        body = lower(
            "fn f(n: usize) { let mut i = 0; while i < n { i += 1; } }"
        )
        heads = [b for b in body.blocks if b.is_loop_head]
        assert len(heads) == 1
        assert heads[0].block_id in body.loop_heads()

    def test_loop_head_collects_invariants(self):
        body = lower(
            "fn f(n: usize) { let mut i = 0; while i < n { body_invariant!(i <= n); i += 1; } }"
        )
        head = next(b for b in body.blocks if b.is_loop_head)
        assert head.invariants

    def test_call_becomes_terminator(self):
        body = lower("fn f() -> usize { let v = RVec::new(); v.len() }")
        calls = [b.terminator for b in body.blocks if isinstance(b.terminator, CallTerm)]
        assert len(calls) == 2
        assert calls[0].func == "RVec::new"
        assert calls[1].func == "method:len"

    def test_deref_assignment(self):
        body = lower("fn f(x: &mut i32) { *x = 1; }")
        statement = body.blocks[0].statements[0]
        assert statement.place.projections == (("deref",),)

    def test_return_statement(self):
        body = lower("fn f(x: i32) -> i32 { return x; }")
        assert isinstance(body.blocks[0].terminator, ReturnTerm)

    def test_match_lowering(self):
        source = """
        enum Shape { Circle(i32), Square(i32) }
        fn area(s: Shape) -> i32 {
            match s {
                Shape::Circle(r) => r * r * 3,
                Shape::Square(w) => w * w,
            }
        }
        """
        body = lower(source, "area")
        switches = [b.terminator for b in body.blocks if isinstance(b.terminator, SwitchVariant)]
        assert len(switches) == 1
        assert {arm[0] for arm in switches[0].arms} == {"Circle", "Square"}

    def test_reverse_postorder_starts_at_entry(self):
        body = lower("fn f(z: bool) -> i32 { if z { 1 } else { 2 } }")
        rpo = body.reverse_postorder()
        assert rpo[0] == Body.ENTRY

    def test_nested_loops(self):
        source = """
        fn f(n: usize) {
            let mut i = 0;
            while i < n {
                let mut j = 0;
                while j < n {
                    j += 1;
                }
                i += 1;
            }
        }
        """
        body = lower(source)
        assert len(body.loop_heads()) == 2


class TestTypeInference:
    def test_simple_locals(self):
        _, types = lower_and_infer("fn f(x: i32) -> i32 { let y = x + 1; y }")
        assert types["y"] == ast.TyName("i32")

    def test_counter_adopts_usize(self):
        source = """
        fn f(v: &RVec<i32>) -> usize {
            let mut i = 0;
            while i < v.len() {
                i += 1;
            }
            i
        }
        """
        _, types = lower_and_infer(source)
        assert types["i"] == ast.TyName("usize")

    def test_vector_element_inference(self):
        source = """
        fn f() -> RVec<f32> {
            let mut v = RVec::new();
            v.push(0.5);
            v
        }
        """
        body, types = lower_and_infer(source)
        assert types["v"] == ast.TyName("RVec", (ast.TyName("f32"),))
        resolved = [t.func for b in body.blocks for t in [b.terminator] if isinstance(t, CallTerm)]
        assert "RVec::push" in resolved

    def test_method_resolution_on_reference(self):
        source = """
        fn f(v: &mut RVec<i32>, i: usize) -> i32 {
            let p = v.get_mut(i);
            *p
        }
        """
        body, types = lower_and_infer(source)
        assert types["p"] == ast.TyRef(True, ast.TyName("i32"))

    def test_user_function_call(self):
        source = """
        fn helper(x: i32) -> bool { x > 0 }
        fn f(y: i32) -> bool { helper(y) }
        """
        _, types = lower_and_infer(source, "f")
        assert types["__ret"] == ast.TyName("bool")

    def test_user_method_resolution(self):
        source = """
        struct Counter { value: i32 }
        impl Counter {
            fn get(&self) -> i32 { self.value }
        }
        fn f(c: &Counter) -> i32 { c.get() }
        """
        body, types = lower_and_infer(source, "f")
        calls = [b.terminator for b in body.blocks if isinstance(b.terminator, CallTerm)]
        assert calls[0].func == "Counter::get"

    def test_struct_field_access(self):
        source = """
        struct Point { x: i32, y: i32 }
        fn f(p: &Point) -> i32 { p.x }
        """
        _, types = lower_and_infer(source, "f")
        assert types["__ret"] == ast.TyName("i32")

    def test_enum_constructor_types(self):
        source = """
        enum List<T> { Nil, Cons(T, Box<List<T>>) }
        fn f() -> List<i32> {
            List::Cons(1, Box::new(List::Nil))
        }
        """
        _, types = lower_and_infer(source, "f")
        ret = types["__ret"]
        assert isinstance(ret, ast.TyName) and ret.name == "List"

    def test_match_bindings_behind_reference(self):
        source = """
        enum List<T> { Nil, Cons(T, Box<List<T>>) }
        impl<T> List<T> {
            fn is_empty(&self) -> bool {
                match self {
                    List::Nil => true,
                    List::Cons(_, _) => false,
                }
            }
        }
        """
        _, types = lower_and_infer(source, "List::is_empty")
        assert types["__ret"] == ast.TyName("bool")

    def test_unknown_method_raises(self):
        source = "fn f(v: &RVec<i32>) { v.frobnicate(); }"
        with pytest.raises(TypeError_):
            lower_and_infer(source)

    def test_unknown_function_raises(self):
        source = "fn f() { missing(); }"
        with pytest.raises(TypeError_):
            lower_and_infer(source)

    def test_swap_generic_instantiation(self):
        source = """
        fn use_swap() -> i32 {
            let mut x = 0;
            let mut y = 1;
            swap(&mut x, &mut y);
            x
        }
        """
        _, types = lower_and_infer(source)
        assert types["x"] in (ast.TyName("i32"),)
