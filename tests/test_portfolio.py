"""Tests for the SAT-configuration portfolio (``repro.smt.portfolio``).

The portfolio's contract is *verdict transparency*: racing k configurations
and keeping the first answer must be observationally identical to the
single default solver, because every configuration runs the same complete
search.  The tests pin the deterministic config grid, then race a real
verification job and compare it function-by-function against the serial
run, including the win counters that surface in ``/metrics``.
"""

import pytest

from repro.smt.portfolio import (
    MAX_PORTFOLIO,
    config_label,
    portfolio_configs,
)
from repro.smt.sat import DEFAULT_CONFIG, SatConfig
from repro.service.api import VerifyJob, verify_jobs
from repro.service.session import VerifySession

PROGRAM = """
#[flux::sig(fn(x: i32{v: v >= 0}) -> i32{v: v > 0})]
fn inc_pos(x: i32) -> i32 {
    x + 1
}

#[flux::sig(fn(n: i32{v: v >= 1}) -> i32{v: v >= 0})]
fn countdown(n: i32) -> i32 {
    let mut i = n;
    while i > 0 {
        i = i - 1;
    }
    i
}

#[flux::sig(fn(x: i32) -> i32{v: v > x})]
fn broken(x: i32) -> i32 {
    x
}
"""


class TestConfigGrid:
    def test_member_zero_is_default(self):
        members = portfolio_configs(4)
        assert members[0][1] == DEFAULT_CONFIG

    def test_deterministic(self):
        assert portfolio_configs(6) == portfolio_configs(6)

    def test_labels_follow_grammar(self):
        for label, config in portfolio_configs(MAX_PORTFOLIO):
            schedule, polarity, *seed = label.split("-")
            assert schedule == ("luby" if config.restarts else "fixed")
            assert polarity == ("pos" if config.default_phase else "neg")
            if config.seed is None:
                assert not seed
            else:
                assert seed == [f"s{config.seed}"]

    def test_labels_unique(self):
        labels = [label for label, _ in portfolio_configs(MAX_PORTFOLIO)]
        assert len(set(labels)) == len(labels)

    def test_width_clamped(self):
        assert len(portfolio_configs(100)) == MAX_PORTFOLIO
        assert len(portfolio_configs(0)) == 1

    def test_grid_varies_restarts_and_polarity(self):
        configs = [config for _, config in portfolio_configs(4)]
        assert {c.restarts for c in configs} == {True, False}
        assert {c.default_phase for c in configs} == {True, False}

    def test_custom_label(self):
        config = SatConfig(restarts=False, default_phase=True, seed=9)
        assert config_label(config) == "fixed-pos-s9"


class TestRaceTransparency:
    def test_portfolio_matches_serial_verdicts(self):
        job = VerifyJob(source=PROGRAM, name="portfolio-program")
        serial = verify_jobs([job], VerifySession(use_cache=False))
        raced = verify_jobs([job], VerifySession(use_cache=False, portfolio=2))

        serial_fns = serial.jobs[0].to_dict()["functions"]
        raced_fns = raced.jobs[0].to_dict()["functions"]
        assert [
            (fn["name"], fn["status"], fn["diagnostics"]) for fn in serial_fns
        ] == [(fn["name"], fn["status"], fn["diagnostics"]) for fn in raced_fns]
        assert serial.ok == raced.ok

    def test_win_counters_surface_in_metrics(self):
        job = VerifyJob(source=PROGRAM, name="portfolio-program")
        report = verify_jobs([job], VerifySession(use_cache=False, portfolio=2))
        snapshot = report.metrics
        races = snapshot.get("smt.portfolio.races")
        assert races is not None and races["value"] == 3  # one per function
        wins = {
            name: entry["value"]
            for name, entry in snapshot.items()
            if name.startswith("smt.portfolio.win.")
        }
        assert sum(wins.values()) == 3
        labels = {label for label, _ in portfolio_configs(2)}
        assert {name.rsplit(".", 1)[1] for name in wins} <= labels
