"""Guard against bypassing the interning smart constructors.

``BinOp(...)`` / ``UnaryOp(...)`` class calls outside ``repro.logic`` skip
the operator-validating smart constructors (``binop``/``unary``/``and_``/...)
and re-introduce the construction idiom the hash-consing refactor removed.
The classes themselves still intern (construction cannot break identity
equality), but routing through the smart constructors keeps validation and
any future normalisation in one place — so new code must use them.
"""

import os
import re

SRC_ROOT = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src", "repro")

#: The interning layer itself may call the node classes directly.
ALLOWED_PREFIX = os.path.join(SRC_ROOT, "logic") + os.sep

_CONSTRUCTION = re.compile(r"\b(BinOp|UnaryOp)\(")


def test_no_direct_binop_construction_outside_logic():
    offenders = []
    for dirpath, _, filenames in os.walk(SRC_ROOT):
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            if path.startswith(ALLOWED_PREFIX):
                continue
            with open(path, "r", encoding="utf-8") as handle:
                for lineno, line in enumerate(handle, 1):
                    stripped = line.split("#", 1)[0]
                    if _CONSTRUCTION.search(stripped):
                        relative = os.path.relpath(path, SRC_ROOT)
                        offenders.append(f"{relative}:{lineno}: {line.strip()}")
    assert not offenders, (
        "direct BinOp(...)/UnaryOp(...) construction outside repro.logic; "
        "use repro.logic.binop/unary (or and_/or_/eq/... smart constructors):\n"
        + "\n".join(offenders)
    )
