"""The combined index-binding-plus-constraint form ``B[@n]{v: pred}``.

This syntax appears in the Table-1 ``kmp`` and ``simplex`` programs
(``fn(&RVec<i32>[@m]{v: v > 0}) -> RVec<usize>[m]``) and used to fail spec
elaboration with a ``ParseError``.  It now elaborates to an indexed type
plus a signature-level requirement on the bound index: assumed when the
function body is checked, proved at every call site.
"""

import pytest

from repro.core import verify_source
from repro.core.errors import FluxError
from repro.core.genv import GlobalEnv
from repro.lang import parse_program
from repro.logic import BinOp, Var, IntConst, gt
from repro.smt import SmtContext, use_context


POSITIVE_LEN = """
#[flux::sig(fn(&RVec<i32>[@m]{v: v > 0}) -> usize[m])]
fn length_of(p: &RVec<i32>) -> usize {
    p.len()
}

#[flux::sig(fn(&RVec<i32>[@n]{v: v > 0}) -> usize[n])]
fn caller_ok(p: &RVec<i32>) -> usize {
    length_of(p)
}
"""

BAD_CALLER = """
#[flux::sig(fn(&RVec<i32>[@m]{v: v > 0}) -> usize[m])]
fn length_of(p: &RVec<i32>) -> usize {
    p.len()
}

#[flux::sig(fn(&RVec<i32>[@n]) -> usize[n])]
fn caller_bad(p: &RVec<i32>) -> usize {
    length_of(p)
}
"""


class TestParsing:
    def test_signature_elaborates_with_requirement(self):
        program = parse_program(POSITIVE_LEN)
        genv = GlobalEnv()
        genv.register_program(program)
        signature = genv.signature("length_of")
        assert ("m", signature.refinement_params[0][1]) in signature.refinement_params
        assert signature.requires == (gt(Var("m"), IntConst(0)),)

    def test_constraint_rejected_outside_argument_position(self):
        source = """
#[flux::sig(fn(usize[@n]) -> RVec<i32>[n]{v: v > 0})]
fn bad(n: usize) -> RVec<i32> {
    RVec::new()
}
"""
        program = parse_program(source)
        genv = GlobalEnv()
        with pytest.raises(FluxError):
            genv.register_program(program)


class TestVerification:
    def test_requirement_assumed_in_body_and_proved_at_call(self):
        with use_context(SmtContext()):
            result = verify_source(POSITIVE_LEN)
        assert result.ok, [str(d) for d in result.diagnostics]

    def test_caller_without_requirement_fails(self):
        with use_context(SmtContext()):
            result = verify_source(BAD_CALLER)
        assert not result.ok
        assert any("requires" in str(d) for d in result.diagnostics)

    @pytest.mark.parametrize("name", ["kmp", "simplex"])
    def test_table1_programs_parse(self, name):
        from repro.bench.fixpoint_bench import collect_function_constraints, table1_programs

        program = table1_programs([name])[0]
        batch = collect_function_constraints(program)
        assert batch, f"{name}: no functions collected"
