"""Tests for the Flux signature and Prusti spec parsers."""

import pytest

from repro.lang import parse_program
from repro.lang.parser import ParseError
from repro.lang.specs import (
    BindIndex,
    SurfBase,
    SurfRef,
    SurfUnit,
    parse_flux_sig,
    parse_refined_by,
    parse_spec_expr,
    parse_variant_sig,
)
from repro.logic import BOOL, INT, App, BinOp, Forall, IntConst, Var, pretty
from repro.logic.expr import Forall as ForallExpr


def sig_tokens(source: str):
    """Extract the raw attribute tokens the parser would capture."""
    program = parse_program(source + "\nfn dummy() { }")
    return program.functions[0].attrs[0].tokens


class TestFluxSig:
    def test_is_pos_signature(self):
        sig = parse_flux_sig(
            sig_tokens("#[flux::sig(fn(i32[@n]) -> bool[n > 0])]\nfn is_pos(n: i32) -> bool { true }")
        )
        assert len(sig.params) == 1
        param_ty = sig.params[0].ty
        assert isinstance(param_ty, SurfBase)
        assert param_ty.name == "i32"
        assert isinstance(param_ty.indices[0], BindIndex)
        assert param_ty.indices[0].name == "n"
        ret = sig.ret
        assert ret.name == "bool"
        assert pretty(ret.indices[0]) == "n > 0"

    def test_existential_return(self):
        sig = parse_flux_sig(["fn", "(", "i32", "[", "@", "x", "]", ")", "->",
                              "i32", "{", "v", ":", "v", ">=", "x", "}"])
        ret = sig.ret
        assert ret.exists_binder == "v"
        assert pretty(ret.exists_pred) == "v >= x"

    def test_nat_alias(self):
        sig = parse_flux_sig(["fn", "(", "&", "mut", "nat", ")"])
        param = sig.params[0].ty
        assert isinstance(param, SurfRef)
        assert param.kind == "mut"
        assert param.inner.name == "i32"
        assert pretty(param.inner.exists_pred) == "v >= 0"

    def test_strong_reference_with_ensures(self):
        tokens = ["fn", "(", "x", ":", "&", "strg", "i32", "[", "@", "n", "]", ")",
                  "ensures", "*", "x", ":", "i32", "[", "n", "+", "1", "]"]
        sig = parse_flux_sig(tokens)
        assert sig.params[0].name == "x"
        assert sig.params[0].ty.kind == "strg"
        assert sig.ensures[0][0] == "x"
        assert pretty(sig.ensures[0][1].indices[0]) == "n + 1"

    def test_vector_signature(self):
        tokens = ["fn", "(", "self", ":", "&", "strg", "RVec", "<", "T", ">", "[", "@", "n", "]",
                  ",", "value", ":", "T", ")", "ensures", "*", "self", ":",
                  "RVec", "<", "T", ">", "[", "n", "+", "1", "]"]
        sig = parse_flux_sig(tokens)
        self_ty = sig.params[0].ty
        assert self_ty.kind == "strg"
        assert self_ty.inner.name == "RVec"
        assert self_ty.inner.args[0].name == "T"

    def test_nested_generic_indexed(self):
        # fn(usize[@n], &mut RVec<RVec<f32>[n]>[@k], &RVec<f32>[k])
        tokens = ["fn", "(", "usize", "[", "@", "n", "]", ",",
                  "&", "mut", "RVec", "<", "RVec", "<", "f32", ">", "[", "n", "]", ">", "[", "@", "k", "]",
                  ",", "&", "RVec", "<", "f32", ">", "[", "k", "]", ")"]
        sig = parse_flux_sig(tokens)
        assert len(sig.params) == 3
        middle = sig.params[1].ty
        assert middle.kind == "mut"
        assert middle.inner.name == "RVec"
        inner_vec = middle.inner.args[0]
        assert inner_vec.name == "RVec"
        assert pretty(inner_vec.indices[0]) == "n"
        assert isinstance(middle.inner.indices[0], BindIndex)

    def test_multiple_indices(self):
        tokens = ["fn", "(", "&", "RMat", "<", "f32", ">", "[", "@", "m", ",", "@", "n", "]", ")",
                  "->", "f32"]
        sig = parse_flux_sig(tokens)
        mat = sig.params[0].ty.inner
        assert len(mat.indices) == 2

    def test_unit_return(self):
        sig = parse_flux_sig(["fn", "(", "bool", ")", "->", "(", ")"])
        assert isinstance(sig.ret, SurfUnit)


class TestRefinedByAndVariants:
    def test_refined_by(self):
        entries = parse_refined_by(["len", ":", "int"])
        assert entries == ((("len", INT))[0:1] + (INT,),) or entries[0][0] == "len"
        assert entries[0][1] == INT

    def test_refined_by_multiple(self):
        entries = parse_refined_by(["rows", ":", "int", ",", "cols", ":", "int"])
        assert [name for name, _ in entries] == ["rows", "cols"]

    def test_refined_by_bad_sort(self):
        with pytest.raises(ParseError):
            parse_refined_by(["len", ":", "string"])

    def test_nil_variant(self):
        sig = parse_variant_sig(["List", "<", "T", ">", "[", "0", "]"])
        assert sig.fields == ()
        assert sig.ret.name == "List"
        assert sig.ret.indices[0] == IntConst(0)

    def test_cons_variant(self):
        tokens = ["(", "T", ",", "Box", "<", "List", "<", "T", ">", "[", "@", "n", "]", ">", ")",
                  "->", "List", "<", "T", ">", "[", "n", "+", "1", "]"]
        sig = parse_variant_sig(tokens)
        assert len(sig.fields) == 2
        assert sig.fields[1].name == "Box"
        assert pretty(sig.ret.indices[0]) == "n + 1"


class TestPrustiSpecs:
    def test_simple_requires(self):
        expr = parse_spec_expr(["idx", "<", "self", ".", "len", "(", ")"])
        assert isinstance(expr, BinOp)
        assert isinstance(expr.rhs, App)
        assert expr.rhs.func == "len"

    def test_old_expression(self):
        expr = parse_spec_expr(["self", ".", "len", "(", ")", "==", "old", "(",
                                "self", ".", "len", "(", ")", ")"])
        assert expr.op == "="
        assert expr.rhs.func == "old"

    def test_forall_spec(self):
        tokens = ["forall", "(", "|", "i", ":", "usize", "|",
                  "i", "<", "n", "==", ">", "v", ".", "lookup", "(", "i", ")", "<", "m", ")"]
        expr = parse_spec_expr(tokens)
        assert isinstance(expr, ForallExpr)
        assert expr.binders[0][0] == "i"
        body = expr.body
        assert body.op == "=>"

    def test_implication_arrow(self):
        expr = parse_spec_expr(["a", ">", "0", "==", ">", "b", ">", "0"])
        assert expr.op == "=>"

    def test_conjunction_of_bounds(self):
        expr = parse_spec_expr(["i0", "<=", "i1", "&&", "i1", "<=", "n"])
        assert expr.op == "&&"

    def test_lookup_application(self):
        expr = parse_spec_expr(["t", ".", "lookup", "(", "x", ")", "<", "i"])
        assert expr.lhs.func == "lookup"
        assert expr.lhs.args[0] == Var("t")
