"""Repository hygiene: generated artifacts must never be committed.

``__pycache__`` directories briefly slipped into the tree once; this guard
keeps them (and stray ``.pyc``/``.pyo`` files) out of version control and
pins the ``.gitignore`` rules that prevent the relapse.
"""

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _tracked_files():
    if shutil.which("git") is None or not (REPO_ROOT / ".git").exists():
        pytest.skip("not running inside a git checkout")
    proc = subprocess.run(
        ["git", "ls-files"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
    )
    return proc.stdout.splitlines()


def test_no_bytecode_artifacts_tracked():
    offenders = [
        path
        for path in _tracked_files()
        if "__pycache__" in path or path.endswith((".pyc", ".pyo"))
    ]
    assert not offenders, f"bytecode artifacts are tracked: {offenders}"


def test_gitignore_blocks_bytecode():
    rules = (REPO_ROOT / ".gitignore").read_text(encoding="utf-8").splitlines()
    assert "__pycache__/" in rules
    assert "*.pyc" in rules
