"""Property tests for the hash-consing (interning) expression layer.

Random expression trees are generated with a seeded RNG (no external
dependencies) and the interned behaviour is checked against reference
implementations of the PR-2 semantics: structural equality, recursive
free-variable collection, and naive recursive substitution.
"""

import pickle
import random
from typing import Dict, FrozenSet, Set

import pytest

from repro.logic import (
    BOOL,
    INT,
    App,
    BinOp,
    BoolConst,
    Expr,
    Forall,
    IntConst,
    Ite,
    KVar,
    UnaryOp,
    Var,
    free_vars,
    kvars_of,
    simplify,
    substitute,
    term_cache_stats,
)
from repro.smt.quant import has_quantifier

NAMES = ["x", "y", "z", "n", "v", "i"]
CMP = ["=", "!=", "<", "<=", ">", ">="]
BOOLOPS = ["&&", "||", "=>", "<=>"]
ARITH = ["+", "-", "*"]


def random_int_expr(rng: random.Random, depth: int) -> Expr:
    if depth <= 0 or rng.random() < 0.3:
        if rng.random() < 0.5:
            return Var(rng.choice(NAMES))
        return IntConst(rng.randint(-3, 3))
    if rng.random() < 0.15:
        return UnaryOp("-", random_int_expr(rng, depth - 1))
    if rng.random() < 0.1:
        return Ite(
            random_bool_expr(rng, depth - 1),
            random_int_expr(rng, depth - 1),
            random_int_expr(rng, depth - 1),
        )
    if rng.random() < 0.1:
        return App("len", (random_int_expr(rng, depth - 1),), INT)
    return BinOp(
        rng.choice(ARITH),
        random_int_expr(rng, depth - 1),
        random_int_expr(rng, depth - 1),
    )


def random_bool_expr(rng: random.Random, depth: int) -> Expr:
    if depth <= 0 or rng.random() < 0.2:
        if rng.random() < 0.2:
            return BoolConst(rng.random() < 0.5)
        return BinOp(rng.choice(CMP), random_int_expr(rng, 1), random_int_expr(rng, 1))
    roll = rng.random()
    if roll < 0.15:
        return UnaryOp("!", random_bool_expr(rng, depth - 1))
    if roll < 0.25:
        return KVar(f"k{rng.randint(0, 2)}", (random_int_expr(rng, depth - 1),))
    if roll < 0.35:
        binder = rng.choice(NAMES)
        return Forall(((binder, INT),), random_bool_expr(rng, depth - 1))
    return BinOp(
        rng.choice(BOOLOPS),
        random_bool_expr(rng, depth - 1),
        random_bool_expr(rng, depth - 1),
    )


# -- reference (PR-2 dataclass-era) implementations --------------------------


def reference_free_vars(expr: Expr, bound: FrozenSet[str] = frozenset()) -> Set[str]:
    if isinstance(expr, Var):
        return set() if expr.name in bound else {expr.name}
    if isinstance(expr, (IntConst, BoolConst)):
        return set()
    if isinstance(expr, BinOp):
        return reference_free_vars(expr.lhs, bound) | reference_free_vars(expr.rhs, bound)
    if isinstance(expr, UnaryOp):
        return reference_free_vars(expr.operand, bound)
    if isinstance(expr, Ite):
        return (
            reference_free_vars(expr.cond, bound)
            | reference_free_vars(expr.then, bound)
            | reference_free_vars(expr.otherwise, bound)
        )
    if isinstance(expr, (App, KVar)):
        out: Set[str] = set()
        for arg in expr.args:
            out |= reference_free_vars(arg, bound)
        return out
    if isinstance(expr, Forall):
        inner = bound | {name for name, _ in expr.binders}
        return reference_free_vars(expr.body, inner)
    raise TypeError(expr)


def reference_substitute(expr: Expr, mapping: Dict[str, Expr]) -> Expr:
    if isinstance(expr, Var):
        return mapping.get(expr.name, expr)
    if isinstance(expr, (IntConst, BoolConst)):
        return expr
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            reference_substitute(expr.lhs, mapping),
            reference_substitute(expr.rhs, mapping),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, reference_substitute(expr.operand, mapping))
    if isinstance(expr, Ite):
        return Ite(
            reference_substitute(expr.cond, mapping),
            reference_substitute(expr.then, mapping),
            reference_substitute(expr.otherwise, mapping),
        )
    if isinstance(expr, App):
        return App(expr.func, tuple(reference_substitute(a, mapping) for a in expr.args), expr.sort)
    if isinstance(expr, KVar):
        return KVar(expr.name, tuple(reference_substitute(a, mapping) for a in expr.args))
    if isinstance(expr, Forall):
        bound = {name for name, _ in expr.binders}
        inner = {k: v for k, v in mapping.items() if k not in bound}
        if not inner:
            return expr
        return Forall(expr.binders, reference_substitute(expr.body, inner))
    raise TypeError(expr)


def reference_has_quantifier(expr: Expr) -> bool:
    if isinstance(expr, Forall):
        return True
    if isinstance(expr, BinOp):
        return reference_has_quantifier(expr.lhs) or reference_has_quantifier(expr.rhs)
    if isinstance(expr, UnaryOp):
        return reference_has_quantifier(expr.operand)
    if isinstance(expr, Ite):
        return any(
            reference_has_quantifier(e) for e in (expr.cond, expr.then, expr.otherwise)
        )
    if isinstance(expr, (App, KVar)):
        return any(reference_has_quantifier(a) for a in expr.args)
    return False


def rebuild(expr: Expr) -> Expr:
    """Reconstruct an equal tree bottom-up through fresh constructor calls."""
    if isinstance(expr, Var):
        return Var(str(expr.name), expr.sort)
    if isinstance(expr, IntConst):
        return IntConst(int(expr.value))
    if isinstance(expr, BoolConst):
        return BoolConst(bool(expr.value))
    if isinstance(expr, BinOp):
        return BinOp(expr.op, rebuild(expr.lhs), rebuild(expr.rhs))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, rebuild(expr.operand))
    if isinstance(expr, Ite):
        return Ite(rebuild(expr.cond), rebuild(expr.then), rebuild(expr.otherwise))
    if isinstance(expr, App):
        return App(expr.func, tuple(rebuild(a) for a in expr.args), expr.sort)
    if isinstance(expr, KVar):
        return KVar(expr.name, tuple(rebuild(a) for a in expr.args))
    if isinstance(expr, Forall):
        return Forall(expr.binders, rebuild(expr.body))
    raise TypeError(expr)


class TestInterning:
    def test_reconstruction_is_identity(self):
        rng = random.Random(1234)
        for _ in range(200):
            expr = random_bool_expr(rng, 4)
            clone = rebuild(expr)
            assert clone is expr
            assert hash(clone) == hash(expr)
            assert clone == expr

    def test_distinct_structures_unequal(self):
        assert Var("x") != Var("y")
        assert Var("x", INT) != Var("x", BOOL)
        assert BinOp("+", Var("x"), Var("y")) != BinOp("+", Var("y"), Var("x"))
        assert IntConst(1) != BoolConst(True)

    def test_structural_equality_in_containers(self):
        rng = random.Random(99)
        exprs = [random_bool_expr(rng, 3) for _ in range(50)]
        table = {expr: index for index, expr in enumerate(exprs)}
        for index, expr in enumerate(exprs):
            assert table[rebuild(expr)] == table[expr]

    def test_pickle_roundtrip_reinterns(self):
        rng = random.Random(7)
        for _ in range(25):
            expr = random_bool_expr(rng, 4)
            clone = pickle.loads(pickle.dumps(expr))
            assert clone is expr

    def test_bool_int_const_normalisation(self):
        assert IntConst(True) is IntConst(1)
        assert IntConst(True).value == 1
        assert BoolConst(1) is BoolConst(True)

    def test_invalid_operators_still_rejected(self):
        with pytest.raises(ValueError):
            BinOp("^^", Var("x"), Var("y"))
        with pytest.raises(ValueError):
            UnaryOp("~", Var("x"))

    def test_clear_preserves_pinned_constant_folding(self):
        from repro.logic import FALSE, TRUE, add, and_, clear_term_caches, mul, not_

        clear_term_caches()
        try:
            x = Var("x")
            assert add(x, 0) is x
            assert mul(IntConst(1), x) is x
            assert simplify(mul(x, IntConst(0))) == IntConst(0)
            assert and_(TRUE, BoolConst(True)) is TRUE
            assert not_(BoolConst(False)) is TRUE
            assert BoolConst(False) is FALSE
        finally:
            clear_term_caches()

    def test_intern_stats_exposed(self):
        stats = term_cache_stats()
        for key in ("intern_table_size", "subst_cache_hits", "simplify_cache_misses"):
            assert key in stats
        assert stats["intern_table_size"] > 0


class TestCachedQueries:
    def test_free_vars_matches_reference(self):
        rng = random.Random(4321)
        for _ in range(300):
            expr = random_bool_expr(rng, 4)
            assert free_vars(expr) == frozenset(reference_free_vars(expr))

    def test_kvars_of_matches_reference(self):
        rng = random.Random(555)

        def reference_kvars(expr: Expr) -> Set[str]:
            acc: Set[str] = set()
            stack = [expr]
            while stack:
                node = stack.pop()
                if isinstance(node, KVar):
                    acc.add(node.name)
                    stack.extend(node.args)
                elif isinstance(node, BinOp):
                    stack.extend((node.lhs, node.rhs))
                elif isinstance(node, UnaryOp):
                    stack.append(node.operand)
                elif isinstance(node, Ite):
                    stack.extend((node.cond, node.then, node.otherwise))
                elif isinstance(node, App):
                    stack.extend(node.args)
                elif isinstance(node, Forall):
                    stack.append(node.body)
            return acc

        for _ in range(300):
            expr = random_bool_expr(rng, 4)
            assert kvars_of(expr) == frozenset(reference_kvars(expr))

    def test_has_quantifier_matches_reference(self):
        rng = random.Random(777)
        for _ in range(300):
            expr = random_bool_expr(rng, 4)
            assert has_quantifier(expr) == reference_has_quantifier(expr)


class TestMemoisedSubstitute:
    def test_agrees_with_reference(self):
        rng = random.Random(2024)
        for _ in range(300):
            expr = random_bool_expr(rng, 4)
            mapping = {
                name: random_int_expr(rng, 2)
                for name in rng.sample(NAMES, rng.randint(0, len(NAMES)))
            }
            assert substitute(expr, mapping) is reference_substitute(expr, mapping)

    def test_disjoint_domain_returns_same_object(self):
        expr = BinOp("<", Var("x"), Var("y"))
        assert substitute(expr, {"q": IntConst(1)}) is expr
        assert substitute(expr, {}) is expr

    def test_repeated_substitution_hits_cache(self):
        expr = BinOp("<", Var("x"), BinOp("+", Var("y"), IntConst(1)))
        mapping = {"x": IntConst(5)}
        first = substitute(expr, mapping)
        before = term_cache_stats()["subst_cache_hits"]
        second = substitute(expr, mapping)
        assert second is first
        assert term_cache_stats()["subst_cache_hits"] == before + 1


class TestMemoisedSimplify:
    def test_simplify_idempotent_and_stable(self):
        rng = random.Random(31337)
        for _ in range(200):
            expr = random_bool_expr(rng, 4)
            once = simplify(expr)
            assert simplify(expr) is once
            assert simplify(once) is once
