"""The fault layer itself: plans, injection semantics, deadlines, memory
ceilings, the circuit breaker, process reaping, the cache tmp sweep, and
the CLI's SIGINT exit code."""

import json
import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro import faults
from repro.service.cache import ResultCache
from repro.service.session import VerifySession


def _plan(*specs: faults.FaultSpec, seed: int = 0) -> faults.FaultPlan:
    return faults.FaultPlan(seed=seed, specs=specs)


# ---------------------------------------------------------------------------
# Plans and the registry
# ---------------------------------------------------------------------------


class TestPlans:
    def test_json_round_trip(self):
        plan = _plan(
            faults.FaultSpec(site="scheduler.worker", kind="crash", match="f0"),
            faults.FaultSpec(site="daemon.job", kind="hang", rate=0.5, delay=1.5),
            seed=7,
        )
        again = faults.FaultPlan.from_json(plan.to_json())
        assert again == plan

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            faults.FaultSpec(site="x", kind="nope")
        with pytest.raises(ValueError):
            faults.FaultSpec(site="", kind="crash")
        with pytest.raises(ValueError):
            faults.FaultSpec(site="x", kind="crash", rate=1.5)
        with pytest.raises(ValueError):
            faults.FaultSpec(site="x", kind="hang", delay=-1)

    def test_install_propagates_via_environment(self):
        plan = _plan(faults.FaultSpec(site="s", kind="oom"))
        with faults.inject_faults(plan):
            assert faults.ENV_PLAN in os.environ
            assert json.loads(os.environ[faults.ENV_PLAN])["specs"][0]["kind"] == "oom"
            assert faults.active_plan() == plan
        assert faults.ENV_PLAN not in os.environ
        assert faults.active_plan() is None

    def test_inject_no_plan_is_noop(self):
        faults.clear_plan()
        faults.inject("scheduler.worker", key="anything")  # must not raise


class TestInjection:
    def test_crash_raises_in_non_worker(self):
        plan = _plan(faults.FaultSpec(site="s", kind="crash"))
        with faults.inject_faults(plan):
            with pytest.raises(faults.InjectedCrash):
                faults.inject("s", key="f")

    def test_oom_raises_memory_error(self):
        plan = _plan(faults.FaultSpec(site="s", kind="oom"))
        with faults.inject_faults(plan):
            with pytest.raises(MemoryError):
                faults.inject("s")

    def test_hang_sleeps_for_delay(self):
        plan = _plan(faults.FaultSpec(site="s", kind="hang", delay=0.1))
        with faults.inject_faults(plan):
            started = time.monotonic()
            faults.inject("s")
            assert time.monotonic() - started >= 0.1

    def test_site_and_match_filters(self):
        plan = _plan(faults.FaultSpec(site="s", kind="oom", match="target"))
        with faults.inject_faults(plan):
            faults.inject("other", key="target")  # wrong site
            faults.inject("s", key="bystander")  # wrong key
            with pytest.raises(MemoryError):
                faults.inject("s", key="the-target-fn")

    def test_max_fires_bounds_firings(self):
        plan = _plan(faults.FaultSpec(site="s", kind="oom", max_fires=2))
        with faults.inject_faults(plan):
            for _ in range(2):
                with pytest.raises(MemoryError):
                    faults.inject("s")
            faults.inject("s")  # third call: spent

    def test_attempts_gates_retries(self):
        # attempts=1 models "fail the first attempt, let the retry pass" —
        # the gate that survives process boundaries where fire counters
        # reset with each fresh worker.
        plan = _plan(faults.FaultSpec(site="s", kind="oom", attempts=1))
        with faults.inject_faults(plan):
            faults.set_attempt(1)
            with pytest.raises(MemoryError):
                faults.inject("s")
            faults.set_attempt(2)
            faults.inject("s")  # retry attempt: gated off
            faults.set_attempt(1)
            with pytest.raises(MemoryError):
                faults.inject("s")
        faults.set_attempt(1)

    def test_rate_draws_are_deterministic(self):
        plan = _plan(faults.FaultSpec(site="s", kind="oom", rate=0.5), seed=3)

        def firing_pattern():
            fired = []
            with faults.inject_faults(plan):
                for i in range(20):
                    try:
                        faults.inject("s", key=f"fn{i}")
                        fired.append(False)
                    except MemoryError:
                        fired.append(True)
            return fired

        first = firing_pattern()
        assert any(first) and not all(first)  # rate actually partial
        assert firing_pattern() == first  # same plan -> same schedule

    def test_crash_kills_marked_worker_subprocess(self):
        plan = _plan(faults.FaultSpec(site="s", kind="crash"))

        def child():
            faults.mark_worker()
            faults.inject("s", key="doomed")
            os._exit(0)  # never reached: inject SIGKILLs the process

        with faults.inject_faults(plan):
            context = multiprocessing.get_context("fork")
            process = context.Process(target=child)
            process.start()
            process.join(timeout=10)
        assert process.exitcode == -signal.SIGKILL


# ---------------------------------------------------------------------------
# Deadlines and memory ceilings
# ---------------------------------------------------------------------------


class TestLimits:
    def test_deadline_interrupts_a_hang(self):
        started = time.monotonic()
        with pytest.raises(faults.DeadlineExceeded):
            with faults.enforce_deadline(0.1):
                time.sleep(5.0)
        assert time.monotonic() - started < 2.0

    def test_deadline_noop_when_unset(self):
        with faults.enforce_deadline(None):
            pass
        with faults.enforce_deadline(0):
            pass

    def test_deadline_noop_off_main_thread(self):
        errors = []

        def run():
            try:
                with faults.enforce_deadline(0.05):
                    time.sleep(0.1)  # outlives the deadline: must NOT raise
            except Exception as error:  # pragma: no cover - the failure mode
                errors.append(error)

        thread = threading.Thread(target=run)
        thread.start()
        thread.join()
        assert errors == []

    def test_nested_deadlines_restore_outer(self):
        with pytest.raises(faults.DeadlineExceeded):
            with faults.enforce_deadline(0.3):
                with faults.enforce_deadline(10.0):
                    pass  # inner scope exits cleanly, outer timer re-armed
                time.sleep(5.0)  # outer deadline still fires

    def test_memory_limit_enforced_in_subprocess(self):
        def child(queue):
            # The ceiling must be *relative* to the forked child's current
            # address space — forked from a long-running test session the
            # inherited VAS can already dwarf a small absolute limit,
            # making even queue.put fail.
            try:
                with open("/proc/self/status") as fh:
                    vm_kb = next(
                        int(line.split()[1])
                        for line in fh
                        if line.startswith("VmSize:")
                    )
            except (OSError, StopIteration):
                vm_kb = 0
            ok = faults.apply_memory_limit(vm_kb // 1024 + 128)
            if not ok:
                queue.put("unsupported")
                return
            try:
                block = bytearray(512 * 1024 * 1024)
                block[0] = 1
                queue.put("allocated")
            except MemoryError:
                queue.put("MemoryError")

        context = multiprocessing.get_context("fork")
        queue = context.Queue()
        process = context.Process(target=child, args=(queue,))
        process.start()
        process.join(timeout=30)
        outcome = queue.get(timeout=5)
        if outcome == "unsupported":
            pytest.skip("RLIMIT_AS not settable here")
        assert outcome == "MemoryError"


# ---------------------------------------------------------------------------
# Circuit breaker and process reaping
# ---------------------------------------------------------------------------


class TestBreakerAndProcs:
    def test_breaker_trips_at_threshold(self):
        breaker = faults.CircuitBreaker(max_crashes=2)
        assert breaker.record("f") == 1
        assert not breaker.tripped("f")
        assert breaker.record("f") == 2
        assert breaker.tripped("f")
        assert not breaker.tripped("innocent")
        breaker.record("g")
        breaker.record("g")
        assert breaker.quarantined() == ("f", "g")

    def test_reap_process_joins_and_escalates(self):
        def stubborn():
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
            time.sleep(60)

        context = multiprocessing.get_context("fork")
        process = context.Process(target=stubborn)
        process.start()
        time.sleep(0.2)  # let the child install its SIGTERM ignore
        escalated = faults.reap_process(process, grace=0.3)
        assert escalated  # SIGTERM ignored -> SIGKILL path taken
        assert process.exitcode is not None  # joined, not leaked

    def test_live_children_sees_forked_child(self):
        context = multiprocessing.get_context("fork")
        process = context.Process(target=time.sleep, args=(30,))
        process.start()
        try:
            assert process.pid in faults.live_children()
        finally:
            faults.reap_process(process, grace=0.2)
        multiprocessing.active_children()
        assert process.pid not in faults.live_children()


# ---------------------------------------------------------------------------
# Cache tmp sweep (satellite: orphaned tmp files)
# ---------------------------------------------------------------------------


class TestCacheSweep:
    def test_open_sweeps_dead_writer_tmp_files(self, tmp_path):
        cache_dir = str(tmp_path)
        # A writer that died mid-put: fork a child just to obtain a pid that
        # is guaranteed dead, then leave a tmp file in its name.
        context = multiprocessing.get_context("fork")
        process = context.Process(target=lambda: None)
        process.start()
        process.join()
        dead_pid = process.pid
        stale = tmp_path / f"abc123.json.tmp.{dead_pid}.140001"
        stale.write_text("{}")
        # A live writer (this process) must be left alone.
        live = tmp_path / f"def456.json.tmp.{os.getpid()}.140002"
        live.write_text("{}")
        # A completed entry is not tmp-shaped and must survive.
        entry = tmp_path / "0123abc.json"
        entry.write_text("{}")

        cache = ResultCache(cache_dir=cache_dir)
        assert cache.swept == 1
        assert not stale.exists()
        assert live.exists()
        assert entry.exists()
        # Re-opening finds nothing left to sweep.
        assert ResultCache(cache_dir=cache_dir).swept == 0

    def test_injected_write_crash_leaves_sweepable_tmp(self, tmp_path, monkeypatch):
        # A cache.write crash fires between the tmp write and the rename;
        # the entry is lost but the *next* open repairs the directory.
        source = """
#[flux::sig(fn(i32[@x]) -> i32{v: v > x})]
fn inc(x: i32) -> i32 { x + 1 }
"""
        plan = _plan(faults.FaultSpec(site="cache.write", kind="crash"))
        # os.replace must not run (the injected crash precedes it), and the
        # tmp file must survive the exception for the sweep to find...
        replaced = []
        real_replace = os.replace

        def spy_replace(src, dst):
            replaced.append(src)
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spy_replace)
        with faults.inject_faults(plan):
            from repro.service.api import VerifyJob, verify_job

            session = VerifySession(cache_dir=str(tmp_path), use_cache=True)
            with session.activate():
                report = verify_job(VerifyJob(source=source, name="t"), session)
        assert report.ok  # the verdict is unaffected by the lost write
        assert replaced == []
        tmp_files = [p for p in tmp_path.iterdir() if ".tmp." in p.name]
        assert tmp_files  # the orphan the sweep exists for
        # ...but this process is alive, so only a *later* open (here forged
        # by renaming to a dead pid) may remove it.
        context = multiprocessing.get_context("fork")
        process = context.Process(target=lambda: None)
        process.start()
        process.join()
        for tmp_file in tmp_files:
            stem, _, tail = tmp_file.name.partition(".tmp.")
            _pid, _, tid = tail.partition(".")
            tmp_file.rename(tmp_path / f"{stem}.tmp.{process.pid}.{tid}")
        assert ResultCache(cache_dir=str(tmp_path)).swept == len(tmp_files)


# ---------------------------------------------------------------------------
# CLI interrupt exit code
# ---------------------------------------------------------------------------


class TestCliInterrupt:
    def test_sigint_exits_130(self, monkeypatch, capsys):
        from repro.service import cli

        def interrupted(argv):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_dispatch", interrupted)
        assert cli.main(["whatever.rs"]) == 130
        assert "interrupted" in capsys.readouterr().err
