#[flux::sig(fn ( n : usize [ @ n ] ) -> RVec < i32 > [ n ])]
fn fn_7_fcb6(n: usize) -> RVec<i32> {
    items
}
