#[flux::sig(fn ( n : i32 [ @ n ] { v : v >= 0 } ) -> i32 { v : v >= n })]
fn fn_4_5f41(n: i32) -> i32 {
    let mut i = 0;
    let mut acc = 0;
    while i < n { }
    acc
}
