#[flux::sig(fn ( n : i32 [ @ n ] { v : v >= 0 } ) -> i32 [ n ])]
fn fn_2_b9d1(n: i32) -> i32 {
    let mut i = 0;
    while i < n {
        i += 1;
    }
    i
}
