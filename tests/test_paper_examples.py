"""The worked examples from the paper's tour (§2) and formalisation (§3–§4).

Each test checks that Flux accepts exactly the programs the paper accepts and
rejects buggy variants; together they cover indexed types, existentials,
refinement parameters, strong/weak updates, borrows at joins, polymorphic
instantiation and the refined vector API.
"""

import pytest

from repro.core import verify_source


def assert_verifies(source: str, **kwargs):
    result = verify_source(source, **kwargs)
    assert result.ok, "\n".join(str(d) for d in result.diagnostics)
    return result


def assert_rejected(source: str, function: str = None, **kwargs):
    result = verify_source(source, **kwargs)
    assert not result.ok, "expected a refinement error, but everything verified"
    if function is not None:
        assert any(d.function == function for d in result.diagnostics)
    return result


class TestFig1Refinements:
    IS_POS = """
    #[flux::sig(fn(i32[@n]) -> bool[n > 0])]
    fn is_pos(n: i32) -> bool {
        if n > 0 { true } else { false }
    }
    """

    ABS = """
    #[flux::sig(fn(i32[@x]) -> i32{v: v >= x && v >= 0})]
    fn abs(x: i32) -> i32 {
        if x < 0 { - x } else { x }
    }
    """

    def test_is_pos(self):
        assert_verifies(self.IS_POS)

    def test_abs(self):
        assert_verifies(self.ABS)

    def test_is_pos_wrong_index(self):
        source = """
        #[flux::sig(fn(i32[@n]) -> bool[n > 10])]
        fn is_pos(n: i32) -> bool {
            if n > 0 { true } else { false }
        }
        """
        assert_rejected(source, "is_pos")

    def test_abs_wrong_bound(self):
        source = """
        #[flux::sig(fn(i32[@x]) -> i32{v: v > x})]
        fn abs(x: i32) -> i32 {
            if x < 0 { - x } else { x }
        }
        """
        assert_rejected(source, "abs")

    def test_singleton_arithmetic(self):
        source = """
        #[flux::sig(fn() -> i32[6])]
        fn six() -> i32 { 1 + 2 + 3 }
        """
        assert_verifies(source)

    def test_singleton_arithmetic_wrong(self):
        source = """
        #[flux::sig(fn() -> i32[7])]
        fn seven() -> i32 { 1 + 2 + 3 }
        """
        assert_rejected(source)


class TestFig2Ownership:
    DECR = """
    #[flux::sig(fn(&mut nat))]
    fn decr(x: &mut i32) {
        let y = *x;
        if y > 0 {
            *x = y - 1;
        }
    }
    """

    def test_decr_preserves_invariant(self):
        assert_verifies(self.DECR)

    def test_decr_violation_detected(self):
        source = """
        #[flux::sig(fn(&mut nat))]
        fn decr(x: &mut i32) {
            let y = *x;
            *x = y - 1;
        }
        """
        assert_rejected(source, "decr")

    def test_ref_join(self):
        source = self.DECR + """
        #[flux::sig(fn(bool) -> nat)]
        fn ref_join(z: bool) -> i32 {
            let mut x = 1;
            let mut y = 2;
            let r = if z { &mut x } else { &mut y };
            decr(r);
            x
        }
        """
        assert_verifies(source)

    def test_use_swap_specs_for_free(self):
        source = """
        #[flux::sig(fn() -> nat)]
        fn use_swap() -> i32 {
            let mut x = 0;
            let mut y = 1;
            swap(&mut x, &mut y);
            x
        }
        """
        assert_verifies(source)

    def test_use_swap_singleton_claim_rejected(self):
        # After the swap, x is no longer known to be exactly 0.
        source = """
        #[flux::sig(fn() -> i32[0])]
        fn use_swap() -> i32 {
            let mut x = 0;
            let mut y = 1;
            swap(&mut x, &mut y);
            x
        }
        """
        assert_rejected(source, "use_swap")

    INCR = """
    #[flux::sig(fn(x: &strg i32[@n]) ensures *x: i32[n + 1])]
    fn incr(x: &mut i32) {
        *x += 1;
    }
    """

    def test_incr_strong_update(self):
        assert_verifies(self.INCR)

    def test_incr_wrong_ensures(self):
        source = """
        #[flux::sig(fn(x: &strg i32[@n]) ensures *x: i32[n + 2])]
        fn incr(x: &mut i32) {
            *x += 1;
        }
        """
        assert_rejected(source, "incr")

    def test_incr_client_strong_update(self):
        source = self.INCR + """
        #[flux::sig(fn() -> i32[2])]
        fn client() -> i32 {
            let mut x = 1;
            incr(&mut x);
            x
        }
        """
        assert_verifies(source)

    def test_exclusive_ownership_strong_update(self):
        source = """
        #[flux::sig(fn() -> i32[3])]
        fn f() -> i32 {
            let mut x = 1;
            x += 1;
            x += 1;
            x
        }
        """
        assert_verifies(source)


class TestFig4Vectors:
    INIT_ZEROS = """
    #[flux::sig(fn(usize[@n]) -> RVec<f32>[n])]
    fn init_zeros(n: usize) -> RVec<f32> {
        let mut vec = RVec::new();
        let mut i = 0;
        while i < n {
            vec.push(0.0);
            i += 1;
        }
        vec
    }
    """

    def test_init_zeros_loop_invariant_synthesised(self):
        assert_verifies(self.INIT_ZEROS)

    def test_init_zeros_off_by_one_rejected(self):
        source = """
        #[flux::sig(fn(usize[@n]) -> RVec<f32>[n + 1])]
        fn init_zeros(n: usize) -> RVec<f32> {
            let mut vec = RVec::new();
            let mut i = 0;
            while i < n {
                vec.push(0.0);
                i += 1;
            }
            vec
        }
        """
        assert_rejected(source, "init_zeros")

    def test_vector_access_in_bounds(self):
        source = """
        #[flux::sig(fn(&RVec<i32>{v: v > 0}) -> i32)]
        fn first(v: &RVec<i32>) -> i32 {
            *v.get(0)
        }
        """
        assert_verifies(source)

    def test_vector_access_out_of_bounds_rejected(self):
        source = """
        #[flux::sig(fn(&RVec<i32>) -> i32)]
        fn first(v: &RVec<i32>) -> i32 {
            *v.get(0)
        }
        """
        assert_rejected(source, "first")

    def test_sum_loop_bounds(self):
        source = """
        #[flux::sig(fn(&RVec<i32>) -> i32)]
        fn sum(v: &RVec<i32>) -> i32 {
            let mut total = 0;
            let mut i = 0;
            while i < v.len() {
                total = total + *v.get(i);
                i += 1;
            }
            total
        }
        """
        assert_verifies(source)

    def test_sum_loop_wrong_bound_rejected(self):
        source = """
        #[flux::sig(fn(&RVec<i32>) -> i32)]
        fn sum(v: &RVec<i32>) -> i32 {
            let mut total = 0;
            let mut i = 0;
            while i <= v.len() {
                total = total + *v.get(i);
                i += 1;
            }
            total
        }
        """
        assert_rejected(source, "sum")

    def test_push_through_strong_reference(self):
        source = """
        #[flux::sig(fn(v: &strg RVec<i32>[@n]) ensures *v: RVec<i32>[n + 2])]
        fn push_two(v: &mut RVec<i32>) {
            v.push(1);
            v.push(2);
        }
        """
        assert_verifies(source)

    def test_make_vec_polymorphic_instantiation(self):
        source = """
        #[flux::sig(fn() -> RVec<i32{v: v > 0}>)]
        fn make_vec() -> RVec<i32> {
            let mut vec = RVec::new();
            vec.push(42);
            vec
        }
        """
        assert_verifies(source)

    def test_make_vec_wrong_element_refinement(self):
        source = """
        #[flux::sig(fn() -> RVec<i32{v: v > 100}>)]
        fn make_vec() -> RVec<i32> {
            let mut vec = RVec::new();
            vec.push(42);
            vec
        }
        """
        assert_rejected(source, "make_vec")

    def test_get_mut_preserves_element_invariant(self):
        source = """
        #[flux::sig(fn(&mut RVec<nat>{v: v > 0}))]
        fn bump(v: &mut RVec<i32>) {
            let p = v.get_mut(0);
            *p = 5;
        }
        """
        assert_verifies(source)

    def test_get_mut_element_invariant_violation(self):
        source = """
        #[flux::sig(fn(&mut RVec<nat>{v: v > 0}))]
        fn bump(v: &mut RVec<i32>) {
            let p = v.get_mut(0);
            *p = -5;
        }
        """
        assert_rejected(source, "bump")
