"""Tests for the online DPLL(T) engine.

The load-bearing property is *equivalence with the offline oracle*: the
online engine (backtrackable simplex inside the CDCL search, theory
propagation, minimized explanations) must return the same SAT/UNSAT verdict
as the historical enumerate-block-repeat loop on every query, and every SAT
model must actually satisfy the asserted atoms (``verify_models`` re-checks
both the clause database and the theory side).  The directed tests pin down
the backtrackable-simplex trail discipline and the budget/unknown paths.
"""

import random

import pytest

from repro.logic.expr import (
    BinOp,
    IntConst,
    Var,
    add,
    and_,
    ge,
    gt,
    implies,
    le,
    lt,
    not_,
    or_,
    sub,
)
from repro.logic.sorts import INT
from repro.smt import IncrementalSolver, SatResult
from repro.smt.sat import SatSolver
from repro.smt.simplex import BacktrackableSimplex, DeltaRational
from repro.smt.solver import solve_formula
from repro.smt.theory import TheorySolver


@pytest.fixture(autouse=True)
def _verify_models():
    """Every SAT answer in this suite is re-checked, boolean and theory side."""
    SatSolver.verify_models = True
    yield
    SatSolver.verify_models = False


# -- random LIA skeleton generator -------------------------------------------

_VARS = [Var("x"), Var("y"), Var("z"), Var("w")]
_CONSTS = [IntConst(-3), IntConst(-1), IntConst(0), IntConst(1), IntConst(2), IntConst(5)]


def _random_term(rng, depth=2):
    if depth == 0 or rng.random() < 0.4:
        return rng.choice(_VARS + _CONSTS)
    op = rng.choice([add, sub])
    return op(_random_term(rng, depth - 1), _random_term(rng, depth - 1))


def _random_atom(rng):
    op = rng.choice(["<", "<=", ">", ">=", "=", "!="])
    return BinOp(op, _random_term(rng), _random_term(rng))


def _random_formula(rng, depth=2):
    if depth == 0 or rng.random() < 0.3:
        return _random_atom(rng)
    shape = rng.random()
    lhs = _random_formula(rng, depth - 1)
    rhs = _random_formula(rng, depth - 1)
    if shape < 0.35:
        return and_(lhs, rhs)
    if shape < 0.7:
        return or_(lhs, rhs)
    if shape < 0.85:
        return implies(lhs, rhs)
    return not_(lhs)


class TestOnlineOfflineDifferential:
    """The randomized oracle gate: ~200 seeded LIA skeletons per run."""

    @pytest.mark.parametrize("seed", range(8))
    def test_one_shot_engines_agree(self, seed):
        rng = random.Random(987_000 + seed)
        for _ in range(25):
            formula = _random_formula(rng, depth=3)
            offline = solve_formula(formula, engine="offline")
            online = solve_formula(formula, engine="online")
            assert online.result == offline.result, f"diverged on {formula}"

    def test_incremental_engines_agree_across_scopes(self):
        """One persistent online solver vs a fresh offline solver per query:
        retained tableau state must never change an answer."""
        rng = random.Random(424242)
        online = IncrementalSolver()
        for _ in range(40):
            hypotheses = [_random_atom(rng) for _ in range(rng.randint(1, 3))]
            goal = _random_formula(rng, depth=2)
            offline = IncrementalSolver(engine="offline")
            for solver in (online, offline):
                solver.push()
                for hypothesis in hypotheses:
                    solver.assert_expr(hypothesis)
            assert online.check_valid(goal) == offline.check_valid(goal), (
                f"diverged on {hypotheses} |= {goal}"
            )
            online.pop()
            offline.pop()

    def test_online_engine_exercises_new_machinery(self):
        """Sanity: the differential above actually runs the online paths."""
        rng = random.Random(7)
        solver = IncrementalSolver()
        for _ in range(30):
            solver.push()
            for _ in range(rng.randint(1, 3)):
                solver.assert_expr(_random_atom(rng))
            solver.check_valid(_random_formula(rng, depth=2))
            solver.pop()
        assert solver.partial_checks > 0
        assert solver.explanations >= 0  # populated field, not an AttributeError
        assert solver.theory_time >= 0.0


class TestBacktrackableSimplex:
    def test_assert_and_undo_restores_bounds(self):
        simplex = BacktrackableSimplex()
        x = simplex.term_var({"x": 1})
        mark = simplex.mark()
        assert simplex.assert_bound(x, True, DeltaRational(5), origin=3) is None
        assert simplex.assert_bound(x, False, DeltaRational(2), origin=4) is None
        assert simplex.feasible() is None
        inner = simplex.mark()
        conflict = simplex.assert_bound(x, False, DeltaRational(9), origin=5)
        assert conflict == {3, 5}  # lower 9 against upper 5
        simplex.undo_to(inner)
        assert simplex.lower_bound(x).value == DeltaRational(2)
        simplex.undo_to(mark)
        assert simplex.upper_bound(x) is None
        assert simplex.lower_bound(x) is None

    def test_row_conflict_explained_with_origins(self):
        simplex = BacktrackableSimplex()
        s = simplex.term_var({"x": 1, "y": 1})  # slack for x + y
        assert simplex.assert_bound(s, False, DeltaRational(10), origin=11) is None
        assert simplex.assert_bound(simplex.term_var({"x": 1}), True, DeltaRational(2), origin=12) is None
        assert simplex.assert_bound(simplex.term_var({"y": 1}), True, DeltaRational(3), origin=13) is None
        conflict = simplex.feasible()
        assert conflict == {11, 12, 13}

    def test_branch_and_bound_on_live_tableau(self):
        simplex = BacktrackableSimplex()
        s = simplex.term_var({"x": 2})  # 2x
        assert simplex.assert_bound(s, False, DeltaRational(1), origin=21) is None
        assert simplex.assert_bound(s, True, DeltaRational(1), origin=22) is None
        # 2x = 1 has no integer solution; the rational relaxation is feasible
        status, explanation, model, nodes = simplex.check_integer({"x"}, model_names={"x"})
        assert status == "unsat"
        assert nodes >= 1
        # bound state untouched by the search
        assert simplex.lower_bound(s).value == DeltaRational(1)

    def test_integer_model_is_integral(self):
        simplex = BacktrackableSimplex()
        x = simplex.term_var({"x": 1})
        assert simplex.assert_bound(x, False, DeltaRational(0, 1), origin=31) is None  # x > 0
        assert simplex.assert_bound(x, True, DeltaRational(3), origin=32) is None
        status, _, model, _ = simplex.check_integer({"x"}, model_names={"x"})
        assert status == "sat"
        assert model["x"] == int(model["x"])
        assert 0 < model["x"] <= 3


class TestNegativeLiteralOrigins:
    def test_feasible_keeps_negative_literal_in_explanation(self):
        """Regression: -1 is variable 1's negative literal, not a sentinel;
        it must survive into conflict explanations."""
        simplex = BacktrackableSimplex()
        s = simplex.term_var({"x": 1, "y": 1})
        assert simplex.assert_bound(s, True, DeltaRational(0), origin=5) is None
        assert (
            simplex.assert_bound(simplex.term_var({"y": 1}), False, DeltaRational(3), origin=7)
            is None
        )
        assert (
            simplex.assert_bound(simplex.term_var({"x": 1}), False, DeltaRational(-2), origin=-1)
            is None
        )
        conflict = simplex.feasible()
        assert conflict == {5, 7, -1}

    def test_goal_atom_as_variable_one_stays_sound(self):
        """End-to-end reproduction: when the goal's atom is SAT variable 1,
        assuming the negated goal asserts literal -1 into the theory.  A
        conflict explanation that dropped -1 learned an over-strong lemma,
        permanently latched the solver UNSAT, and certified false
        obligations afterwards."""
        x, y = Var("x"), Var("y")
        solver = IncrementalSolver({"x": INT, "y": INT})
        solver.literal_for(le(x, IntConst(2)))  # atom "x <= 2" becomes var 1
        solver.assert_expr(le(add(x, y), 0))
        solver.assert_expr(ge(y, 3))
        assert solver.check_valid(le(x, IntConst(2)))  # x <= -3 <= 2: valid
        # A genuinely invalid goal must stay refutable afterwards.
        assert not solver.check_valid(le(x, IntConst(-100)))
        answer = solver.check_sat()
        assert answer.result is SatResult.SAT


class TestTheoryPropagation:
    def test_bound_implies_weaker_atom(self):
        """Asserting x >= 5 must propagate x >= 3 as a theory consequence,
        not rediscover it through search."""
        x = Var("x")
        solver = IncrementalSolver({"x": INT})
        solver.push()
        # Mention both atoms so they are registered before the check.
        solver.assert_expr(ge(x, 5))
        solver.assert_expr(or_(ge(x, 3), le(x, 0)))
        answer = solver.check_sat()
        assert answer.result is SatResult.SAT
        assert solver.theory_propagations > 0
        solver.pop()

    def test_partial_checks_happen(self):
        x, y = Var("x"), Var("y")
        solver = IncrementalSolver({"x": INT, "y": INT})
        solver.push()
        solver.assert_expr(and_(ge(x, 0), le(add(x, y), 10)))
        solver.assert_expr(ge(y, 0))
        assert solver.check_valid(le(x, IntConst(10)))
        solver.pop()
        assert solver.partial_checks > 0


class TestBudgets:
    @staticmethod
    def _assert_branchy_conflict(solver):
        """Two slack-row conflicts that single-variable bound propagation
        cannot shortcut: each disjunct needs its own simplex refutation."""
        x, y, z = Var("x"), Var("y"), Var("z")
        solver.assert_expr(or_(ge(add(x, y), 10), ge(add(x, z), 10)))
        solver.assert_expr(le(x, 2))
        solver.assert_expr(le(y, 2))
        solver.assert_expr(le(z, 2))

    def test_round_budget_returns_unknown(self):
        """A theory-round budget too small for the search yields UNKNOWN with
        a reason, never a wrong verdict or a crash."""
        solver = IncrementalSolver(
            {"x": INT, "y": INT, "z": INT}, max_theory_rounds=1
        )
        self._assert_branchy_conflict(solver)
        answer = solver.check_sat()
        assert answer.result is SatResult.UNKNOWN
        assert "budget" in answer.reason

    def test_generous_budget_decides_the_same_problem(self):
        solver = IncrementalSolver(
            {"x": INT, "y": INT, "z": INT}, max_theory_rounds=5000
        )
        self._assert_branchy_conflict(solver)
        assert solver.check_sat().result is SatResult.UNSAT


class TestExplanationShrinking:
    def test_core_dropone_removes_padding(self):
        """Irrelevant asserted atoms must not survive into the explanation."""
        x = Var("x")
        pads = [Var(f"p{i}") for i in range(6)]
        solver = IncrementalSolver()
        solver.push()
        for pad in pads:
            solver.assert_expr(ge(pad, 0))
        solver.assert_expr(ge(x, 5))
        assert solver.check_valid(ge(x, 1))
        solver.pop()
        # The refutation's conflict is {x >= 5, x < 1}; with six padding
        # atoms asserted the average explanation must stay far below the
        # asserted-atom count.
        if solver.explanations:
            assert solver.explanation_literals / solver.explanations <= 4
