"""Cache-key invalidation properties (ROADMAP cache item, fuzz satellite).

The content-addressed result cache must invalidate *exactly* what an edit
can affect:

* a **body** edit re-keys only the edited function — callers depend on the
  callee's interface, not its proof;
* an **interface** edit (signature/spec) re-keys the function and every
  direct caller, and nothing else;
* an **ADT** edit re-keys every function whose obligations can mention the
  type;
* a **schema bump** re-keys everything, so stale on-disk entries from an
  older encoder are never replayed.
"""

import repro.service.cache as cache_mod
from repro.core.genv import GlobalEnv
from repro.core.pipeline import FunctionResult
from repro.lang.parser import parse_program
from repro.service.cache import KeyTables, ResultCache, function_key
from repro.service.api import VerifyJob, verify_job
from repro.service.session import VerifySession


BASE = """
#[flux::sig(fn ( x : i32 [ @ x ] ) -> i32 [ x + 1 ])]
fn leaf(x: i32) -> i32 {
    x + 1
}

#[flux::sig(fn ( x : i32 [ @ x ] ) -> i32 [ x + 2 ])]
fn caller(x: i32) -> i32 {
    leaf(x) + 1
}

#[flux::sig(fn ( x : i32 [ @ x ] ) -> i32 [ x ])]
fn bystander(x: i32) -> i32 {
    x
}
"""

BODY_EDIT = BASE.replace("    x + 1\n}", "    1 + x\n}", 1)
INTERFACE_EDIT = BASE.replace("i32 [ x + 1 ]", "i32 { v : v >= x + 1 }", 1)


def _keys(source):
    program = parse_program(source)
    genv = GlobalEnv()
    genv.register_program(program)
    tables = KeyTables(program, genv)
    return {
        fn.name: function_key(program, fn, genv, tables=tables)
        for fn in program.functions
    }


class TestEditLocality:
    def test_keys_are_deterministic_and_distinct(self):
        first, second = _keys(BASE), _keys(BASE)
        assert first == second
        assert len(set(first.values())) == len(first)

    def test_body_edit_rekeys_only_the_edited_function(self):
        before, after = _keys(BASE), _keys(BODY_EDIT)
        assert before["leaf"] != after["leaf"]
        assert before["caller"] == after["caller"]
        assert before["bystander"] == after["bystander"]

    def test_interface_edit_rekeys_exactly_the_dependents(self):
        before, after = _keys(BASE), _keys(INTERFACE_EDIT)
        assert before["leaf"] != after["leaf"]
        assert before["caller"] != after["caller"], (
            "caller depends on leaf's spec and must be re-verified"
        )
        assert before["bystander"] == after["bystander"]

    def test_generated_crates_have_stable_distinct_keys(self):
        from repro.fuzz.generator import crate_seed, generate_crate

        for index in range(3):
            crate = generate_crate(crate_seed(21, index), "small")
            first, second = _keys(crate.source), _keys(crate.source)
            assert first == second
            assert len(set(first.values())) == len(first)


STRUCT_BASE = """
#[flux::refined_by(n: int)]
struct Counter {
    #[flux::field(i32[n])]
    value: i32,
}

#[flux::sig(fn ( c : Counter [ @ n ] ) -> i32 [ n ])]
fn read(c: Counter) -> i32 {
    c.value
}

#[flux::sig(fn ( x : i32 [ @ x ] ) -> i32 [ x ])]
fn unrelated(x: i32) -> i32 {
    x
}
"""


class TestAdtEdits:
    def test_struct_edit_rekeys_users_not_bystanders(self):
        edited = STRUCT_BASE.replace("value: i32", "amount: i32").replace(
            "c.value", "c.amount"
        )
        before, after = _keys(STRUCT_BASE), _keys(edited)
        assert before["read"] != after["read"]
        assert before["unrelated"] == after["unrelated"]


class TestSchemaVersion:
    def test_bump_rekeys_every_function(self, monkeypatch):
        before = _keys(BASE)
        monkeypatch.setattr(
            cache_mod, "SCHEMA_VERSION", cache_mod.SCHEMA_VERSION + 1
        )
        after = _keys(BASE)
        for name in before:
            assert before[name] != after[name]

    def test_stale_disk_entries_are_not_replayed(self, monkeypatch, tmp_path):
        (key,) = [_keys(BASE)["leaf"]]
        cache = ResultCache(cache_dir=str(tmp_path))
        cache.put(key, FunctionResult(name="leaf", ok=True))
        fresh = ResultCache(cache_dir=str(tmp_path))
        assert fresh.get(key) is not None

        monkeypatch.setattr(
            cache_mod, "SCHEMA_VERSION", cache_mod.SCHEMA_VERSION + 1
        )
        bumped_key = _keys(BASE)["leaf"]
        assert bumped_key != key
        stale_aware = ResultCache(cache_dir=str(tmp_path))
        assert stale_aware.get(bumped_key) is None

    def test_session_warm_cache_discarded_after_bump(self, monkeypatch, tmp_path):
        def run():
            session = VerifySession(cache_dir=str(tmp_path), use_cache=True)
            with session.activate():
                return verify_job(VerifyJob(source=BASE, name="warmth"), session)

        cold = run()
        assert cold.cache_hits == 0 and cold.cache_misses > 0
        warm = run()
        assert warm.cache_misses == 0 and warm.cache_hits == cold.cache_misses

        monkeypatch.setattr(
            cache_mod, "SCHEMA_VERSION", cache_mod.SCHEMA_VERSION + 1
        )
        rekeyed = run()
        assert rekeyed.cache_hits == 0, (
            "entries written under the old schema must not satisfy new keys"
        )
        for fn in rekeyed.functions:
            assert fn.status == "ok"
