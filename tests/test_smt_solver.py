"""Tests for the lazy DPLL(T) solver and the validity interface."""

from fractions import Fraction

import pytest

from repro.logic import (
    BOOL,
    INT,
    TRUE,
    FALSE,
    Forall,
    IntConst,
    Var,
    add,
    and_,
    eq,
    ge,
    gt,
    implies,
    le,
    lt,
    mul,
    ne,
    not_,
    or_,
    sub,
)
from repro.logic.expr import App, Ite, KVar
from repro.smt import check_sat, is_satisfiable, is_valid, get_stats, reset_stats
from repro.smt.solver import SmtError, solve_formula


x, y, z = Var("x"), Var("y"), Var("z")
b = Var("b", BOOL)


class TestSatisfiability:
    def test_trivial_true(self):
        assert is_satisfiable(TRUE)

    def test_trivial_false(self):
        assert not is_satisfiable(FALSE)

    def test_simple_inequality(self):
        assert is_satisfiable(gt(x, 0))

    def test_contradiction(self):
        assert not is_satisfiable(and_(gt(x, 0), lt(x, 0)))

    def test_boundary_contradiction(self):
        assert not is_satisfiable(and_(ge(x, 5), le(x, 4)))

    def test_boundary_satisfiable(self):
        answer = check_sat(and_(ge(x, 5), le(x, 5)))
        assert answer.is_sat
        assert answer.model["x"] == 5

    def test_disjunction_picks_feasible_branch(self):
        formula = and_(or_(lt(x, 0), gt(x, 10)), ge(x, 5))
        answer = check_sat(formula)
        assert answer.is_sat
        assert answer.model["x"] > 10

    def test_disequality(self):
        assert is_satisfiable(and_(ne(x, 3), ge(x, 3), le(x, 4)))
        assert not is_satisfiable(and_(ne(x, 3), ge(x, 3), le(x, 3)))

    def test_equalities_propagate(self):
        formula = and_(eq(x, y), eq(y, z), eq(x, 1), eq(z, 2))
        assert not is_satisfiable(formula)

    def test_linear_combination(self):
        formula = and_(eq(add(x, y), 10), eq(sub(x, y), 4))
        answer = check_sat(formula)
        assert answer.is_sat
        assert answer.model["x"] == 7
        assert answer.model["y"] == 3

    def test_integer_gap(self):
        # 2x = 1 is unsat over the integers
        assert not is_satisfiable(eq(mul(2, x), 1))

    def test_boolean_variables(self):
        formula = and_(or_(b, gt(x, 0)), not_(b), le(x, 0))
        assert not is_satisfiable(formula, {"b": BOOL})

    def test_boolean_equality(self):
        formula = and_(eq(b, True), not_(b))
        assert not is_satisfiable(formula, {"b": BOOL})

    def test_implication_structure(self):
        formula = and_(implies(gt(x, 0), gt(y, 10)), eq(x, 5), le(y, 10))
        assert not is_satisfiable(formula)

    def test_ite_term(self):
        formula = eq(Ite(gt(x, 0), IntConst(1), IntConst(2)), 2)
        answer = check_sat(formula)
        assert answer.is_sat
        assert answer.model["x"] <= 0

    def test_nonlinear_rejected(self):
        with pytest.raises(SmtError):
            solve_formula(eq(mul(x, y), 4))

    def test_kvar_rejected(self):
        with pytest.raises(SmtError):
            solve_formula(KVar("k0", (x,)))

    def test_model_satisfies_atoms(self):
        formula = and_(ge(x, 3), le(add(x, y), 10), ge(y, 2))
        answer = check_sat(formula)
        assert answer.is_sat
        model = answer.model
        assert model["x"] >= 3
        assert model["x"] + model["y"] <= 10
        assert model["y"] >= 2


class TestUninterpretedFunctions:
    def test_functional_consistency(self):
        fx = App("f", (x,), INT)
        fy = App("f", (y,), INT)
        formula = and_(eq(x, y), ne(fx, fy))
        assert not is_satisfiable(formula)

    def test_different_arguments_allowed(self):
        fx = App("f", (x,), INT)
        fy = App("f", (y,), INT)
        formula = and_(ne(x, y), ne(fx, fy))
        assert is_satisfiable(formula)

    def test_nested_applications(self):
        ffx = App("f", (App("f", (x,), INT),), INT)
        fx = App("f", (x,), INT)
        formula = and_(eq(fx, x), ne(ffx, x))
        assert not is_satisfiable(formula)


class TestValidity:
    def test_modus_ponens(self):
        assert is_valid([gt(x, 0)], ge(x, 1))

    def test_not_valid(self):
        assert not is_valid([ge(x, 0)], ge(x, 1))

    def test_decr_obligation(self):
        # a_y >= 0, a_y > 0 |= a_y - 1 >= 0   (the decr example from §3.2)
        ay = Var("ay")
        assert is_valid([ge(ay, 0), gt(ay, 0)], ge(sub(ay, 1), 0))

    def test_append_obligation(self):
        # (0 = n => m = n + m) and (v + 1 = n => v + m + 1 = n + m)  from §2.3
        n, m, v = Var("n"), Var("m"), Var("v")
        assert is_valid([eq(IntConst(0), n)], eq(m, add(n, m)))
        assert is_valid([eq(add(v, 1), n)], eq(add(add(v, m), 1), add(n, m)))

    def test_vector_bounds_obligation(self):
        # i < n and n <= len |= i < len
        i, n, length = Var("i"), Var("n"), Var("len")
        assert is_valid([lt(i, n), le(n, length)], lt(i, length))

    def test_invalid_vector_bound(self):
        i, n = Var("i"), Var("n")
        assert not is_valid([le(i, n)], lt(i, n))

    def test_empty_hypotheses(self):
        assert is_valid([], ge(mul(x, 0), 0))

    def test_hypotheses_contradictory(self):
        assert is_valid([gt(x, 0), lt(x, 0)], FALSE)

    def test_stats_recorded(self):
        reset_stats()
        is_valid([gt(x, 0)], ge(x, 1))
        stats = get_stats()
        assert stats.queries >= 1
        assert stats.valid >= 1


class TestQuantifiers:
    def test_quantified_hypothesis_instantiation(self):
        # forall i. 0 <= i < n => lookup(v, i) < m,  0 <= j < n |= lookup(v, j) < m
        i, j, n, m, v = Var("i"), Var("j"), Var("n"), Var("m"), Var("v")
        hypothesis = Forall(
            (("i", INT),),
            implies(and_(ge(i, 0), lt(i, n)), lt(App("lookup", (v, i), INT), m)),
        )
        goal = lt(App("lookup", (v, j), INT), m)
        assert is_valid([hypothesis, ge(j, 0), lt(j, n)], goal)

    def test_quantified_hypothesis_not_strong_enough(self):
        i, j, n, m, v = Var("i"), Var("j"), Var("n"), Var("m"), Var("v")
        hypothesis = Forall(
            (("i", INT),),
            implies(and_(ge(i, 0), lt(i, n)), lt(App("lookup", (v, i), INT), m)),
        )
        goal = lt(App("lookup", (v, j), INT), m)
        # j may be out of range, so the goal should not be provable
        assert not is_valid([hypothesis, ge(j, 0)], goal)

    def test_quantified_goal_skolemised(self):
        i, n = Var("i"), Var("n")
        goal = Forall((("i", INT),), implies(lt(i, n), lt(i, add(n, 1))))
        assert is_valid([], goal)
