"""The refined linked list of Fig. 5: an enum indexed by its length.

This example exercises refined algebraic data types: the ``#[flux::refined_by]``
and ``#[flux::variant]`` attributes, constructor checking, and match-based
length reasoning.

Run with:  python examples/linked_list.py
"""

from repro.core import verify_source

SOURCE = """
#[flux::refined_by(len: int)]
enum List {
    #[flux::variant(List[0])]
    Nil,
    #[flux::variant((i32, Box<List[@n]>) -> List[n + 1])]
    Cons(i32, Box<List>),
}

#[flux::sig(fn() -> List[0])]
fn empty() -> List {
    List::Nil()
}

#[flux::sig(fn(i32) -> List[2])]
fn two(x: i32) -> List {
    List::Cons(x, Box::new(List::Cons(x, Box::new(List::Nil()))))
}

#[flux::sig(fn(i32, List[@n]) -> List[n + 1])]
fn push_front(x: i32, rest: List) -> List {
    List::Cons(x, Box::new(rest))
}
"""

WRONG = """
#[flux::refined_by(len: int)]
enum List {
    #[flux::variant(List[0])]
    Nil,
    #[flux::variant((i32, Box<List[@n]>) -> List[n + 1])]
    Cons(i32, Box<List>),
}

// claims to return a 2-element list but builds a singleton
#[flux::sig(fn(i32) -> List[2])]
fn two(x: i32) -> List {
    List::Cons(x, Box::new(List::Nil()))
}
"""


def main() -> None:
    print("== refined linked list (Fig. 5) ==")
    result = verify_source(SOURCE)
    print(result.summary())

    print()
    print("== wrong length index is rejected ==")
    wrong = verify_source(WRONG)
    for diagnostic in wrong.diagnostics:
        print("  error:", diagnostic)
    assert not wrong.ok


if __name__ == "__main__":
    main()
