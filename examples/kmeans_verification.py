"""Verify the k-means fragments of §2.3 (Fig. 4) with Flux and with the
Prusti-style baseline, and compare the annotation burden.

Run with:  python examples/kmeans_verification.py
"""

from repro.bench.programs import KMEANS_FLUX, KMEANS_PRUSTI
from repro.core import verify_source
from repro.prusti import verify_source_prusti


def main() -> None:
    print("== Flux: signatures only, loop invariants inferred ==")
    flux_result = verify_source(KMEANS_FLUX)
    print(flux_result.summary())

    print()
    print("== Prusti-style baseline: contracts + manual body_invariant! ==")
    prusti_result = verify_source_prusti(KMEANS_PRUSTI)
    for fn in prusti_result.functions:
        status = "ok" if fn.ok else "ERROR"
        print(
            f"{fn.name:25s} {status:6s} {fn.time:6.2f}s "
            f"specs={fn.spec_lines} invariants={fn.invariant_lines}"
        )

    invariant_lines = sum(fn.invariant_lines for fn in prusti_result.functions)
    print()
    print(f"Flux loop-invariant annotations:   0")
    print(f"Prusti loop-invariant annotations: {invariant_lines}")
    print(f"Flux total time:   {flux_result.time:.2f}s")
    print(f"Prusti total time: {prusti_result.time:.2f}s")


if __name__ == "__main__":
    main()
