"""Verify the WaVe-style sandboxing kernels (the paper's second case study).

The security property: every address handed out by the sandbox stays within
the sandbox's memory region, expressed as refinements on a refined struct.

Run with:  python examples/wave_sandbox.py
"""

from repro.bench.programs import WAVE_FLUX
from repro.core import verify_source

BUGGY_TRANSLATE = """
#[flux::refined_by(base: int, size: int)]
struct SandboxMemory {
    #[flux::field(usize[base])]
    base: usize,
    #[flux::field(usize[size])]
    size: usize,
}

// BUG: forgets to add the base, so the returned address may escape the
// sandbox's memory region (it is below base).
#[flux::sig(fn(&SandboxMemory[@b, @s], usize{v: v <= s}) -> usize{v: b <= v && v <= b + s})]
fn translate(sbx: &SandboxMemory, offset: usize) -> usize {
    offset
}
"""


def main() -> None:
    print("== verified sandboxing kernels ==")
    result = verify_source(WAVE_FLUX)
    print(result.summary())

    print()
    print("== an out-of-sandbox bug is caught ==")
    buggy = verify_source(BUGGY_TRANSLATE)
    for diagnostic in buggy.diagnostics:
        print("  error:", diagnostic)
    assert not buggy.ok


if __name__ == "__main__":
    main()
