"""Quickstart: verify a refined MiniRust program with Flux.

Run with:  python examples/quickstart.py
"""

from repro.core import verify_source

SOURCE = """
// Indexed types: i32[n] is the singleton type of integers equal to n.
#[flux::sig(fn(i32[@n]) -> bool[n > 0])]
fn is_pos(n: i32) -> bool {
    if n > 0 { true } else { false }
}

// Existential types: the result is at least x and non-negative.
#[flux::sig(fn(i32[@x]) -> i32{v: v >= x && v >= 0})]
fn abs(x: i32) -> i32 {
    if x < 0 { -x } else { x }
}

// Strong references: the ensures clause gives the *updated* type of *x.
#[flux::sig(fn(x: &strg i32[@n]) ensures *x: i32[n + 1])]
fn incr(x: &mut i32) {
    *x += 1;
}

// Loop invariants are inferred: no annotations needed to prove that the
// returned vector has exactly n elements.
#[flux::sig(fn(usize[@n]) -> RVec<f32>[n])]
fn init_zeros(n: usize) -> RVec<f32> {
    let mut vec = RVec::new();
    let mut i = 0;
    while i < n {
        vec.push(0.0);
        i += 1;
    }
    vec
}
"""

BUGGY = """
// The update may drop below zero, violating the &mut nat invariant.
#[flux::sig(fn(&mut nat))]
fn decr(x: &mut i32) {
    let y = *x;
    *x = y - 1;
}
"""


def main() -> None:
    print("== verifying a correct program ==")
    result = verify_source(SOURCE)
    print(result.summary())
    assert result.ok

    print()
    print("== verifying a buggy program ==")
    result = verify_source(BUGGY)
    print(result.summary())
    for diagnostic in result.diagnostics:
        print("  error:", diagnostic)
    assert not result.ok


if __name__ == "__main__":
    main()
